// Exchange protocol under channel faults: bounded retries, session
// deadlines, the three delivery outcomes, salvage decoding, and the
// receiver-side splice/fallback logic that keeps estimation running on a
// degraded copy instead of throwing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/health.hpp"
#include "sim/campaign.hpp"
#include "sim/scenario.hpp"
#include "v2v/channel.hpp"
#include "v2v/codec.hpp"
#include "v2v/exchange.hpp"
#include "v2v/link.hpp"

namespace rups::v2v {
namespace {

core::ContextTrajectory sample_trajectory(std::size_t metres,
                                          std::size_t channels,
                                          std::size_t capacity = 0) {
  core::ContextTrajectory traj(channels, capacity ? capacity : metres + 4);
  for (std::size_t i = 0; i < metres; ++i) {
    core::PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if ((i + c) % 3 == 0) continue;
      const auto state = (i + c) % 3 == 1 ? core::ChannelState::kMeasured
                                          : core::ChannelState::kInterpolated;
      pv.set(c,
             static_cast<float>(-110.0 +
                                static_cast<double>((i * 7 + c * 13) % 60)),
             state);
    }
    traj.append(core::GeoSample{std::sin(i * 0.1) * 3.0,
                                100.0 + static_cast<double>(i) * 0.37},
                std::move(pv));
  }
  return traj;
}

TEST(ExchangeDegraded, CleanChannelDelivers) {
  const auto sender = sample_trajectory(300, 16);
  DsrcLink link(1);
  FaultyChannel channel(1, FaultConfig::clean());
  ExchangeSession session(&link, &channel);
  const auto result = session.exchange_full(sender);
  EXPECT_EQ(result.outcome, ExchangeOutcome::kDelivered);
  EXPECT_TRUE(result.usable());
  EXPECT_EQ(result.detail, nullptr);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.fragments_received, result.fragments_expected);
  EXPECT_EQ(result.trajectory.size(), sender.size());
  EXPECT_EQ(result.metres_received, result.metres_expected);
}

TEST(ExchangeDegraded, SaturatedLinkTerminatesAsFailed) {
  // Satellite regression: loss_rate = 1.0 used to spin transfer() forever.
  // Now every fragment exhausts its MAC budget, the session reports kFailed
  // and the accounting shows the bounded retries.
  const auto sender = sample_trajectory(200, 16);
  DsrcLink::Config cfg;
  cfg.loss_rate = 1.0;
  DsrcLink link(3, cfg);
  ExchangeSession session(&link, nullptr);
  const auto result = session.exchange_full(sender);
  EXPECT_EQ(result.outcome, ExchangeOutcome::kFailed);
  EXPECT_FALSE(result.usable());
  EXPECT_EQ(result.fragments_received, 0u);
  EXPECT_GT(result.fragments_expected, 0u);
  EXPECT_EQ(result.trajectory.size(), 0u);
  EXPECT_GT(result.stats.packets_lost, 0u);
  EXPECT_FALSE(result.stats.delivered);
  // MAC budget * rounds bounds the total number of transmissions.
  const std::size_t ceiling = result.fragments_expected *
                              link.config().max_transmissions *
                              session.config().max_rounds;
  EXPECT_LE(result.stats.transmissions, ceiling);
  EXPECT_GE(result.rounds, 1u);
  EXPECT_LE(result.rounds, session.config().max_rounds);
}

TEST(ExchangeDegraded, FullyLossyChannelAlsoFails) {
  const auto sender = sample_trajectory(150, 12);
  DsrcLink link(4);
  FaultyChannel channel(4, FaultConfig::iid(1.0));
  ExchangeSession session(&link, &channel);
  const auto result = session.exchange_full(sender);
  EXPECT_EQ(result.outcome, ExchangeOutcome::kFailed);
  EXPECT_EQ(result.fragments_received, 0u);
}

TEST(ExchangeDegraded, SaturatedTransferReportsFailure) {
  DsrcLink::Config cfg;
  cfg.loss_rate = 1.0;
  DsrcLink link(9, cfg);
  const auto stats = link.transfer(50'000);
  EXPECT_FALSE(stats.delivered);
  EXPECT_EQ(stats.packets_lost, stats.packets);
  EXPECT_EQ(stats.transmissions, stats.packets * cfg.max_transmissions);
  EXPECT_GT(stats.duration_s, 0.0);
}

TEST(ExchangeDegraded, BurstLossSalvagesContiguousRegion) {
  // Under heavy Gilbert-Elliott loss with a single round and no retries,
  // some fragments are missing; the session must fall back to the best
  // contiguous region instead of discarding everything.
  const auto sender = sample_trajectory(800, 16);
  bool saw_degraded = false;
  for (std::uint64_t seed = 1; seed <= 20 && !saw_degraded; ++seed) {
    DsrcLink link(seed);
    FaultConfig fc;
    fc.burst_loss = true;
    fc.p_good_to_bad = 0.05;
    fc.p_bad_to_good = 0.2;
    fc.loss_rate_bad = 0.97;
    FaultyChannel channel(seed, fc);
    ExchangeConfig ec;
    ec.max_rounds = 1;  // no selective repeat: force partial delivery
    ExchangeSession session(&link, &channel, ec);
    const auto result = session.exchange_full(sender);
    if (result.outcome != ExchangeOutcome::kDegraded) continue;
    saw_degraded = true;
    EXPECT_TRUE(result.usable());
    ASSERT_NE(result.detail, nullptr);
    EXPECT_GT(result.metres_received, 0u);
    EXPECT_LT(result.metres_received, result.metres_expected);
    EXPECT_LT(result.fragments_received, result.fragments_expected);

    // Salvaged metres must agree with a clean decode of the same metres.
    const auto clean = TrajectoryCodec::decode(TrajectoryCodec::encode(sender));
    const auto& got = result.trajectory;
    ASSERT_GE(got.first_metre(), clean.first_metre());
    for (std::size_t i = 0; i < got.size(); ++i) {
      const std::size_t j =
          static_cast<std::size_t>(got.first_metre() - clean.first_metre()) + i;
      ASSERT_LT(j, clean.size());
      EXPECT_DOUBLE_EQ(got.distance_at(i),
                       static_cast<double>(clean.first_metre() + j));
      for (std::size_t c = 0; c < got.channels(); ++c) {
        EXPECT_EQ(got.power(i).state(c), clean.power(j).state(c));
        if (clean.power(j).usable(c)) {
          EXPECT_FLOAT_EQ(got.power(i).at(c), clean.power(j).at(c));
        }
      }
    }
  }
  EXPECT_TRUE(saw_degraded) << "no seed produced a salvageable region";
}

TEST(ExchangeDegraded, RetriesRecoverFromModerateLoss) {
  // The urban profile loses ~5% of packets in bursts; four selective-repeat
  // rounds should deliver the full context almost always.
  const auto sender = sample_trajectory(600, 16);
  std::size_t delivered = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DsrcLink link(seed);
    FaultyChannel channel(seed, FaultConfig::urban());
    ExchangeSession session(&link, &channel);
    const auto result = session.exchange_full(sender);
    if (result.outcome == ExchangeOutcome::kDelivered) {
      ++delivered;
      EXPECT_EQ(result.trajectory.size(), sender.size());
    }
    EXPECT_TRUE(result.usable());
  }
  EXPECT_GE(delivered, 8u);
}

TEST(ExchangeDegraded, TinyDeadlineDegradesInsteadOfBlocking) {
  const auto sender = sample_trajectory(1000, 24);
  DsrcLink link(6);
  FaultyChannel channel(6, FaultConfig::tunnel());
  ExchangeConfig ec;
  ec.deadline_s = 0.05;  // ~12 packets of link time
  ExchangeSession session(&link, &channel, ec);
  const auto result = session.exchange_full(sender);
  EXPECT_NE(result.outcome, ExchangeOutcome::kDelivered);
  EXPECT_LT(result.stats.duration_s, 0.5);
}

TEST(ExchangeDegraded, TailExchangeCarriesOnlyTailMetres) {
  const auto sender = sample_trajectory(400, 16);
  DsrcLink link(2);
  FaultyChannel channel(2, FaultConfig::clean());
  ExchangeSession session(&link, &channel);
  const auto result = session.exchange_tail(sender, 350);
  EXPECT_EQ(result.outcome, ExchangeOutcome::kDelivered);
  EXPECT_EQ(result.trajectory.size(), 50u);
  EXPECT_EQ(result.trajectory.first_metre(), 350u);
}

TEST(ExchangeDegraded, SpliceTailExtendsReceiverCopy) {
  const auto full = sample_trajectory(120, 8);
  core::ContextTrajectory receiver(8, 200);
  EXPECT_TRUE(receiver.splice_tail(full));
  EXPECT_EQ(receiver.size(), 120u);

  auto longer = sample_trajectory(150, 8);
  core::ContextTrajectory tail(8, 40);
  for (std::size_t i = 120; i < 150; ++i) {
    tail.append(longer.geo(i), longer.power(i));
  }
  // tail currently starts at metre 0; rebase it to 120.
  tail.rebase(120);
  EXPECT_TRUE(receiver.splice_tail(tail));
  EXPECT_EQ(receiver.size(), 150u);

  core::ContextTrajectory gap(8, 10);
  gap.append(longer.geo(0), longer.power(0));
  gap.rebase(400);
  EXPECT_FALSE(receiver.splice_tail(gap));  // hole — refuse to splice

  core::ContextTrajectory wrong_width(4, 10);
  EXPECT_FALSE(receiver.splice_tail(wrong_width));
}

TEST(ExchangeDegraded, ReceiverFallsBackToFullAfterFailure) {
  sim::V2vReceiver receiver(16, 1024);
  EXPECT_FALSE(receiver.have_full);

  const auto sender = sample_trajectory(300, 16);
  DsrcLink link(1);
  FaultyChannel channel(1, FaultConfig::clean());
  ExchangeSession session(&link, &channel);

  const auto full = session.exchange_full(sender);
  EXPECT_TRUE(receiver.ingest(full, /*full_exchange=*/true));
  EXPECT_TRUE(receiver.have_full);
  EXPECT_EQ(receiver.synced_metre, 300u);
  EXPECT_EQ(receiver.received.size(), 300u);

  // A failed tail keeps the watermark: synced_metre does not advance, so
  // the next round re-requests exactly the missing metres as another tail.
  ExchangeResult failed = full;
  failed.outcome = ExchangeOutcome::kFailed;
  EXPECT_FALSE(receiver.ingest(failed, /*full_exchange=*/false));
  EXPECT_TRUE(receiver.have_full);
  EXPECT_EQ(receiver.synced_metre, 300u);
  EXPECT_EQ(receiver.received.size(), 300u);  // cached copy kept

  // A failed FULL transfer drops have_full so the next round retries it.
  EXPECT_FALSE(receiver.ingest(failed, /*full_exchange=*/true));
  EXPECT_FALSE(receiver.have_full);
  EXPECT_TRUE(receiver.ingest(full, /*full_exchange=*/true));
  EXPECT_TRUE(receiver.have_full);

  // A usable tail that does not connect to the cache (hole in the metre
  // range) must force a full re-transfer instead of splicing a gap.
  auto far_sender = sample_trajectory(500, 16);
  ExchangeResult gap_tail = session.exchange_tail(far_sender, 450);
  ASSERT_EQ(gap_tail.outcome, ExchangeOutcome::kDelivered);
  EXPECT_FALSE(receiver.ingest(gap_tail, /*full_exchange=*/false));
  EXPECT_FALSE(receiver.have_full);
}

TEST(ExchangeDegraded, HealthMonitorRaisesDeliveryAlert) {
  obs::HealthConfig cfg;
  cfg.max_delivery_failure_rate = 0.4;
  cfg.min_exchanges = 5;
  obs::HealthMonitor monitor(cfg);
  for (int i = 0; i < 6; ++i) monitor.on_exchange(false, false);
  const auto report = monitor.report();
  EXPECT_EQ(report.exchanges, 6u);
  EXPECT_DOUBLE_EQ(report.delivery_failure_rate, 1.0);
  bool fired = false;
  for (const auto& alert : report.alerts) {
    if (alert.rule == "delivery_failure") fired = true;
  }
  EXPECT_TRUE(fired);

  obs::HealthMonitor healthy(cfg);
  for (int i = 0; i < 20; ++i) healthy.on_exchange(true, i % 4 == 0);
  const auto ok = healthy.report();
  EXPECT_DOUBLE_EQ(ok.delivery_failure_rate, 0.0);
  EXPECT_DOUBLE_EQ(ok.degraded_rate, 0.25);
  EXPECT_TRUE(ok.alerts.empty());
}

TEST(ExchangeDegraded, CampaignSurvivesTotalBlackout) {
  // End-to-end regression: a campaign over a loss_rate = 1.0 channel must
  // terminate (no infinite retransmission), produce zero RUPS estimates on
  // the v2v path, and report the failure through the health monitor.
  sim::Scenario scenario =
      sim::Scenario::two_car(7, road::EnvironmentType::kFourLaneUrban);
  scenario.route_length_m = 6'000.0;
  sim::ConvoySimulation sim(scenario);
  sim::CampaignConfig config;
  config.max_queries = 3;
  config.model_v2v_cost = true;
  config.fault = v2v::FaultConfig::iid(1.0);
  const auto result = sim::run_campaign(sim, config);
  ASSERT_EQ(result.queries.size(), 3u);
  for (const auto& q : result.queries) {
    EXPECT_FALSE(q.rups.has_value());
  }
  EXPECT_EQ(result.health.exchanges, 3u);
  EXPECT_DOUBLE_EQ(result.health.delivery_failure_rate, 1.0);
}

}  // namespace
}  // namespace rups::v2v
