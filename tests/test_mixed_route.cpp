// Integration: the paper's 97 km mixed evaluation route, scaled down — the
// convoy crosses environment changes and 90-degree turns, exercising the
// heading pipeline (gyro + magnetometer through reorientation) and SYN
// matching across segment boundaries.

#include <gtest/gtest.h>

#include "sim/campaign.hpp"
#include "util/angle.hpp"
#include "util/stats.hpp"

namespace rups::sim {
namespace {

Scenario mixed_scenario(std::uint64_t seed) {
  Scenario s = Scenario::two_car(seed, road::EnvironmentType::kFourLaneUrban);
  s.mixed_route = true;
  s.route_length_m = 12'000.0;
  return s;
}

TEST(MixedRoute, RouteContainsTurnsAndEnvironmentChanges) {
  ConvoySimulation sim(mixed_scenario(88));
  const auto& segs = sim.route().segments();
  ASSERT_GT(segs.size(), 5u);
  bool turn = false, env_change = false;
  for (std::size_t i = 1; i < segs.size(); ++i) {
    if (std::abs(util::angle_diff(segs[i].heading_rad,
                                  segs[i - 1].heading_rad)) > 0.5) {
      turn = true;
    }
    if (segs[i].env != segs[i - 1].env) env_change = true;
  }
  EXPECT_TRUE(turn);
  EXPECT_TRUE(env_change);
}

TEST(MixedRoute, HeadingEstimateTracksTruthThroughTurns) {
  ConvoySimulation sim(mixed_scenario(88));
  sim.run_until(300.0);
  util::RunningStats err;
  for (int i = 0; i < 30; ++i) {
    sim.run_until(300.0 + 10.0 * i);
    for (std::size_t v = 0; v < 2; ++v) {
      if (!sim.rig(v).engine().calibrated()) continue;
      err.add(std::abs(util::angle_diff(sim.rig(v).engine().heading_rad(),
                                        sim.rig(v).state().heading_rad)));
    }
  }
  ASSERT_GT(err.count(), 20u);
  EXPECT_LT(err.mean(), 0.15);  // < ~9 degrees on average
}

TEST(MixedRoute, RupsAccuracySurvivesTurnsAndEnvChanges) {
  ConvoySimulation sim(mixed_scenario(89));
  CampaignConfig cfg;
  cfg.max_queries = 40;
  cfg.interval_s = 5.0;
  const auto result = run_campaign(sim, cfg);
  util::RunningStats rde;
  for (double e : result.rups_errors()) rde.add(e);
  EXPECT_GT(result.rups_availability(), 0.8);
  ASSERT_GT(rde.count(), 25u);
  EXPECT_LT(rde.mean(), 8.0);
  EXPECT_LT(util::median(result.rups_errors()), 3.0);
}

TEST(MixedRoute, ContextHeadingsRecordTheTurns) {
  ConvoySimulation sim(mixed_scenario(88));
  sim.run_until(500.0);
  const auto& ctx = sim.rig(0).engine().context();
  ASSERT_GT(ctx.size(), 300u);
  // The recorded geographical trajectory must show heading diversity if the
  // car went around corners.
  util::RunningStats heading;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    heading.add(ctx.geo(i).heading_rad);
  }
  EXPECT_GT(heading.max() - heading.min(), 0.5);
}

}  // namespace
}  // namespace rups::sim
