#include "gsm/channel_plan.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rups::gsm {
namespace {

TEST(ChannelPlan, FullBandHas194Channels) {
  const auto plan = ChannelPlan::full_r_gsm_900();
  EXPECT_EQ(plan.size(), 194u);  // the paper's scanner count
}

TEST(ChannelPlan, FullBandArfcnRanges) {
  const auto plan = ChannelPlan::full_r_gsm_900();
  EXPECT_EQ(plan.arfcn(0), 0);
  EXPECT_EQ(plan.arfcn(124), 124);
  EXPECT_EQ(plan.arfcn(125), 955);
  EXPECT_EQ(plan.arfcn(193), 1023);
}

TEST(ChannelPlan, DownlinkFrequencies) {
  EXPECT_NEAR(ChannelPlan::downlink_mhz(0), 935.0, 1e-9);
  EXPECT_NEAR(ChannelPlan::downlink_mhz(124), 959.8, 1e-9);
  EXPECT_NEAR(ChannelPlan::downlink_mhz(955), 921.2, 1e-9);
  EXPECT_NEAR(ChannelPlan::downlink_mhz(1023), 934.8, 1e-9);
  EXPECT_THROW((void)ChannelPlan::downlink_mhz(500), std::out_of_range);
  EXPECT_THROW((void)ChannelPlan::downlink_mhz(-1), std::out_of_range);
}

TEST(ChannelPlan, SweepTimeMatchesPaper) {
  const auto plan = ChannelPlan::full_r_gsm_900();
  // Paper: all 194 channels scanned within 2.85 s => ~15 ms/channel.
  EXPECT_NEAR(plan.sweep_seconds(), 2.91, 0.2);
}

TEST(ChannelPlan, EvaluationSubsetSizeAndMembership) {
  const auto full = ChannelPlan::full_r_gsm_900();
  const auto sub = ChannelPlan::evaluation_subset(42, 115);
  EXPECT_EQ(sub.size(), 115u);  // the paper's evaluation uses 115 channels
  std::set<Arfcn> full_set(full.arfcns().begin(), full.arfcns().end());
  std::set<Arfcn> seen;
  for (Arfcn a : sub.arfcns()) {
    EXPECT_TRUE(full_set.count(a)) << "ARFCN " << a << " not in band";
    seen.insert(a);
  }
  EXPECT_EQ(seen.size(), 115u);  // no duplicates
}

TEST(ChannelPlan, EvaluationSubsetSortedAndDeterministic) {
  const auto a = ChannelPlan::evaluation_subset(42, 115);
  const auto b = ChannelPlan::evaluation_subset(42, 115);
  EXPECT_EQ(a.arfcns(), b.arfcns());
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a.arfcn(i - 1), a.arfcn(i));
  }
  const auto c = ChannelPlan::evaluation_subset(43, 115);
  EXPECT_NE(a.arfcns(), c.arfcns());
}

TEST(ChannelPlan, SubsetLargerThanBandReturnsFullBand) {
  const auto sub = ChannelPlan::evaluation_subset(1, 500);
  EXPECT_EQ(sub.size(), 194u);
}

TEST(ChannelPlan, EmptyListRejected) {
  EXPECT_THROW(ChannelPlan(std::vector<Arfcn>{}), std::invalid_argument);
}

TEST(ChannelPlan, InstanceFrequenciesMatchStaticForGsm) {
  const auto plan = ChannelPlan::full_r_gsm_900();
  for (std::size_t i = 0; i < plan.size(); i += 17) {
    EXPECT_DOUBLE_EQ(plan.frequency_mhz(i),
                     ChannelPlan::downlink_mhz(plan.arfcn(i)));
    EXPECT_EQ(plan.band_of(i), Band::kRGsm900);
  }
}

TEST(ChannelPlan, FmBroadcastBand) {
  const auto fm = ChannelPlan::fm_broadcast();
  EXPECT_EQ(fm.size(), 206u);
  EXPECT_DOUBLE_EQ(fm.frequency_mhz(0), 87.5);
  EXPECT_NEAR(fm.frequency_mhz(205), 108.0, 1e-9);
  EXPECT_EQ(fm.band_of(100), Band::kFmBroadcast);
}

TEST(ChannelPlan, CombinedPlanConcatenates) {
  const auto gsm = ChannelPlan::evaluation_subset(1, 50);
  const auto fm = ChannelPlan::fm_broadcast();
  const auto both = ChannelPlan::combined(gsm, fm);
  ASSERT_EQ(both.size(), 256u);
  EXPECT_EQ(both.band_of(0), Band::kRGsm900);
  EXPECT_EQ(both.band_of(50), Band::kFmBroadcast);
  EXPECT_DOUBLE_EQ(both.frequency_mhz(0), gsm.frequency_mhz(0));
  EXPECT_DOUBLE_EQ(both.frequency_mhz(50), 87.5);
  // GSM carriers ~930-960 MHz, FM ~88-108 MHz.
  EXPECT_GT(both.frequency_mhz(10), 900.0);
  EXPECT_LT(both.frequency_mhz(60), 120.0);
}

}  // namespace
}  // namespace rups::gsm
