// util::JsonValue: the generic JSON reader behind obs_diff and diagnostics
// bundle inspection. Unlike MetricsSnapshot::from_json (strict, schema-
// bound), this must accept any well-formed document and reject malformed
// ones with a useful error.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/json.hpp"

namespace rups::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainers) {
  const auto doc = JsonValue::parse(
      R"({"a": [1, 2, 3], "b": {"c": "x"}, "empty_arr": [], "empty_obj": {}})");
  ASSERT_TRUE(doc.is_object());
  const auto& a = doc.find("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
  EXPECT_EQ(doc.find_path("b.c")->as_string(), "x");
  EXPECT_TRUE(doc.find("empty_arr")->as_array().empty());
  EXPECT_TRUE(doc.find("empty_obj")->as_object().empty());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.find_path("b.missing"), nullptr);
  EXPECT_EQ(doc.find_path("a.c"), nullptr);  // array is not an object
}

TEST(Json, StringEscapes) {
  const auto doc = JsonValue::parse(R"("line\nquote\"back\\slash\tuA")");
  EXPECT_EQ(doc.as_string(), "line\nquote\"back\\slash\tuA");
  // Non-ASCII \u escapes decode to UTF-8.
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xc3\xa9");
}

TEST(Json, Helpers) {
  const auto doc = JsonValue::parse(R"({"n": 7, "s": "str", "x": null})");
  EXPECT_DOUBLE_EQ(doc.number_or("n", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(doc.number_or("s", -1.0), -1.0);  // wrong type -> fallback
  EXPECT_EQ(doc.string_or("s", "d"), "str");
  EXPECT_EQ(doc.string_or("x", "d"), "d");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("nul"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("1 2"), std::runtime_error);  // trailing
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("\"bad\\u00g1\""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("--3"), std::runtime_error);
}

TEST(Json, DepthLimitGuardsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_THROW((void)JsonValue::parse(deep), std::runtime_error);
  // Reasonable nesting is fine.
  EXPECT_NO_THROW((void)JsonValue::parse("[[[[[[[[[[1]]]]]]]]]]"));
}

TEST(Json, TypeMismatchThrows) {
  const auto doc = JsonValue::parse("{\"a\": 1}");
  EXPECT_THROW((void)doc.as_array(), std::runtime_error);
  EXPECT_THROW((void)doc.as_number(), std::runtime_error);
  EXPECT_THROW((void)doc.find("a")->as_string(), std::runtime_error);
}

TEST(Json, DuplicateKeysKeepLastValue) {
  const auto doc = JsonValue::parse(R"({"k": 1, "k": 2})");
  EXPECT_DOUBLE_EQ(doc.number_or("k", 0.0), 2.0);
}

TEST(JsonQuote, EscapesQuotesBackslashesAndShortEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("\b\f\n\r\t"), "\"\\b\\f\\n\\r\\t\"");
}

TEST(JsonQuote, ControlCharactersBecomeUnicodeEscapes) {
  EXPECT_EQ(json_quote(std::string_view("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  // NUL must survive too (string_view carries the length).
  EXPECT_EQ(json_quote(std::string_view("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(JsonQuote, NonAsciiBytesPassThrough) {
  EXPECT_EQ(json_quote("caf\xC3\xA9"), "\"caf\xC3\xA9\"");
}

TEST(JsonQuote, RoundTripsThroughParser) {
  // Hostile label-value shapes that the exposition / folded-output writers
  // may embed: quotes, backslashes, control chars, \u-range bytes, UTF-8.
  const std::string hostile[] = {
      "outcome=\"ok\"", "back\\slash", std::string("nul\0byte", 8),
      "tab\tnewline\nret\r", "\x02\x03\x1b[31m", "caf\xC3\xA9 \xE2\x82\xAC",
  };
  for (const std::string& s : hostile) {
    const auto doc = JsonValue::parse(json_quote(s));
    ASSERT_TRUE(doc.is_string());
    EXPECT_EQ(doc.as_string(), s);
  }
}

}  // namespace
}  // namespace rups::util
