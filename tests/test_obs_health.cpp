// Health/SLO monitor: rule evaluation, edge-triggered alerts, report JSON,
// and the end-to-end acceptance path — a campaign with an injected SYN
// drought must raise alerts and leave a diagnostics bundle explaining the
// failing seeks.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/health.hpp"
#include "obs/recorder.hpp"
#include "sim/campaign.hpp"
#include "sim/convoy_sim.hpp"
#include "util/json.hpp"

namespace rups {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

obs::HealthConfig tight_config() {
  obs::HealthConfig cfg;
  cfg.window = 8;
  cfg.min_samples = 4;
  cfg.min_availability = 0.5;
  cfg.max_error_p95_m = 10.0;
  cfg.max_latency_p99_us = 0.0;  // off
  cfg.max_miss_streak = 4;
  return cfg;
}

TEST(HealthMonitor, AvailabilityAndStreakAlertsAreEdgeTriggered) {
  obs::HealthMonitor monitor(tight_config());
  for (int i = 0; i < 10; ++i) monitor.on_query(false, std::nullopt, 100.0);

  auto report = monitor.report();
  EXPECT_EQ(report.samples, 10u);
  EXPECT_DOUBLE_EQ(report.availability, 0.0);
  EXPECT_EQ(report.miss_streak, 10u);
  EXPECT_FALSE(report.healthy());

  // One alert per rule per excursion, not one per violating sample.
  std::size_t availability_alerts = 0;
  std::size_t streak_alerts = 0;
  for (const auto& a : report.alerts) {
    if (a.rule == "availability") ++availability_alerts;
    if (a.rule == "miss_streak") ++streak_alerts;
  }
  EXPECT_EQ(availability_alerts, 1u);
  EXPECT_EQ(streak_alerts, 1u);

  // Recovery re-arms: a second drought fires a second alert.
  for (int i = 0; i < 8; ++i) monitor.on_query(true, 1.0, 100.0);
  EXPECT_TRUE(monitor.report().miss_streak == 0);
  for (int i = 0; i < 8; ++i) monitor.on_query(false, std::nullopt, 100.0);
  report = monitor.report();
  streak_alerts = 0;
  for (const auto& a : report.alerts) {
    if (a.rule == "miss_streak") ++streak_alerts;
  }
  EXPECT_EQ(streak_alerts, 2u);
}

TEST(HealthMonitor, ErrorAndLatencyRules) {
  auto cfg = tight_config();
  cfg.max_latency_p99_us = 1000.0;
  obs::HealthMonitor monitor(cfg);

  for (int i = 0; i < 8; ++i) monitor.on_query(true, 50.0, 5000.0);
  const auto report = monitor.report();
  EXPECT_GT(report.error_p95_m, 10.0);
  EXPECT_GT(report.latency_p99_us, 1000.0);

  bool error_alert = false;
  bool latency_alert = false;
  for (const auto& a : report.alerts) {
    if (a.rule == "error_p95") error_alert = true;
    if (a.rule == "latency_p99") latency_alert = true;
  }
  EXPECT_TRUE(error_alert);
  EXPECT_TRUE(latency_alert);
}

TEST(HealthMonitor, DisabledRulesNeverFire) {
  obs::HealthConfig cfg;
  cfg.window = 8;
  cfg.min_samples = 1;
  cfg.min_availability = 0.0;  // all rules off
  cfg.max_error_p95_m = 0.0;
  cfg.max_latency_p99_us = 0.0;
  cfg.max_miss_streak = 0;
  obs::HealthMonitor monitor(cfg);
  for (int i = 0; i < 20; ++i) monitor.on_query(false, 1e9, 1e9);
  EXPECT_TRUE(monitor.report().healthy());
}

TEST(HealthMonitor, NoAlertsBeforeMinSamples) {
  obs::HealthMonitor monitor(tight_config());  // min_samples = 4
  for (int i = 0; i < 3; ++i) monitor.on_query(false, std::nullopt, 1.0);
  EXPECT_TRUE(monitor.report().healthy());
}

TEST(HealthMonitor, ReportJsonParses) {
  obs::HealthMonitor monitor(tight_config());
  for (int i = 0; i < 6; ++i) monitor.on_query(false, std::nullopt, 250.0);
  const auto doc = util::JsonValue::parse(monitor.report().to_json());
  EXPECT_DOUBLE_EQ(doc.number_or("samples", -1.0), 6.0);
  EXPECT_DOUBLE_EQ(doc.number_or("availability", -1.0), 0.0);
  EXPECT_EQ(doc.find("healthy")->as_bool(), false);
  EXPECT_GE(doc.find("alerts")->as_array().size(), 1u);
  const auto& alert = doc.find("alerts")->as_array()[0];
  EXPECT_FALSE(alert.string_or("rule", "").empty());
  EXPECT_GE(alert.number_or("sample_index", 0.0), 4.0);
}

// Acceptance: a campaign with a forced SYN drought (scanner deafness, as
// in test_failure_injection) produces health alerts in CampaignResult AND
// a diagnostics bundle whose recorder events show the failing seeks.
TEST(HealthMonitor, CampaignSynDroughtProducesDiagnosticsBundle) {
  const fs::path dir = fs::temp_directory_path() / "rups_health_drought";
  fs::remove_all(dir);

  sim::Scenario scenario =
      sim::Scenario::two_car(31, road::EnvironmentType::kFourLaneUrban);
  scenario.route_length_m = 6'000.0;
  scenario.scanner_base.sensitivity_dbm = 0.0;  // total GSM deafness
  sim::ConvoySimulation sim(scenario);

  sim::CampaignConfig cfg;
  cfg.warmup_s = 350.0;
  cfg.interval_s = 3.0;
  cfg.max_queries = 8;
  cfg.model_v2v_cost = false;
  cfg.health = tight_config();
  cfg.diagnostics_dir = dir;

  const auto result = sim::run_campaign(sim, cfg);
  ASSERT_GE(result.queries.size(), 6u);
  EXPECT_DOUBLE_EQ(result.rups_availability(), 0.0);
  EXPECT_FALSE(result.health.healthy());
  EXPECT_DOUBLE_EQ(result.health.availability, 0.0);
  EXPECT_GE(result.health.miss_streak, 6u);

  // At least one bundle, and it must contain the seek rejections that
  // explain the drought plus the unanswered-estimate verdicts.
  bool found_bundle = false;
  bool found_seek_event = false;
  bool found_estimate_missing = false;
  ASSERT_TRUE(fs::exists(dir));
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto doc = util::JsonValue::parse(slurp(entry.path()));
    EXPECT_EQ(doc.string_or("kind", ""), "rups_diagnostics_bundle");
    ASSERT_NE(doc.find("config"), nullptr);
    EXPECT_NE(doc.find("config")->find("health"), nullptr);
    found_bundle = true;
    for (const auto& event : doc.find("events")->as_array()) {
      const std::string type = event.string_or("type", "");
      if (type == "seek_rejected" || type == "seek_started") {
        found_seek_event = true;
      }
      if (type == "estimate_missing") found_estimate_missing = true;
    }
  }
  EXPECT_TRUE(found_bundle);
  EXPECT_TRUE(found_seek_event);
  EXPECT_TRUE(found_estimate_missing);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace rups
