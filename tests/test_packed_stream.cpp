// Per-metre streaming stress of PackedContext::sync: retro-fill (binder
// back-filling interpolated channels behind the head) interleaved with
// append-driven front eviction, one metre at a time — the §17 ingest
// cadence. At every step the incrementally-maintained pack must be
// bit-identical to a cold pack built from scratch; a stale volatile-suffix
// repack or a mis-advanced eviction base shows up as a float mismatch.
// Runs under ASan in the verify matrix, so buffer arithmetic bugs in the
// compaction path fault loudly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "core/packed.hpp"
#include "core/types.hpp"
#include "util/hash_noise.hpp"

namespace rups {
namespace {

constexpr std::size_t kChannels = 16;
constexpr std::size_t kCapacity = 64;
/// Binder's default retro-fill reach (max_interpolation_gap_m).
constexpr std::size_t kRetroReach = 40;

[[nodiscard]] float value_at(std::uint64_t metre, std::size_t channel,
                             std::uint32_t salt) {
  util::HashNoise noise(0x5EEDULL + salt);
  return -95.0f + 25.0f * static_cast<float>(noise.uniform(
                              static_cast<std::int64_t>(metre * 131 + channel)));
}

/// Append one metre with a deterministic subset of channels measured.
void append_metre(core::ContextTrajectory& t) {
  const std::uint64_t metre = t.first_metre() + t.size();
  core::PowerVector power(kChannels);
  for (std::size_t c = 0; c < kChannels; ++c) {
    // Leave ~1/3 of slots missing so retro-fill has holes to plug.
    if ((metre + c) % 3 == 0) continue;
    power.set(c, value_at(metre, c, 0), core::ChannelState::kMeasured);
  }
  t.append(core::GeoSample{0.0, static_cast<double>(metre)},
           std::move(power));
}

/// Binder-style retro-fill: plug missing slots with interpolated values on
/// entries up to kRetroReach behind the newest metre.
void retro_fill(core::ContextTrajectory& t, std::uint64_t step) {
  if (t.empty()) return;
  const std::size_t reach = std::min(t.size(), kRetroReach);
  for (std::size_t back = 1; back <= reach; ++back) {
    const std::size_t i = t.size() - back;
    core::PowerVector& power = t.mutable_power(i);
    for (std::size_t c = 0; c < kChannels; ++c) {
      if (power.usable(c)) continue;
      // Fill one hole per (step, entry) so changes KEEP arriving on old
      // columns long after they were first packed.
      if ((step + back + c) % 7 != 0) continue;
      power.set(c, value_at(t.first_metre() + i, c, 1),
                core::ChannelState::kInterpolated);
      break;
    }
  }
}

void expect_pack_matches_cold(const core::PackedContext& incremental,
                              const core::ContextTrajectory& t,
                              std::uint64_t step) {
  core::PackedContext cold;
  (void)cold.sync(t);
  const core::PackedSpan a = incremental.span();
  const core::PackedSpan b = cold.span();
  ASSERT_EQ(a.metres, b.metres) << "step " << step;
  ASSERT_EQ(a.channels, b.channels) << "step " << step;
  ASSERT_EQ(incremental.first_metre(), cold.first_metre()) << "step " << step;
  for (std::size_t c = 0; c < a.channels; ++c) {
    const float* ax = a.x + c * a.stride;
    const float* bx = b.x + c * b.stride;
    const float* a2 = a.x2 + c * a.stride;
    const float* b2 = b.x2 + c * b.stride;
    const float* av = a.v + c * a.stride;
    const float* bv = b.v + c * b.stride;
    for (std::size_t m = 0; m < a.metres; ++m) {
      // Bitwise comparison: a stale column is usually a SMALL value drift,
      // exactly what tolerance-based checks miss.
      ASSERT_EQ(std::memcmp(&ax[m], &bx[m], sizeof(float)), 0)
          << "x stale at step " << step << " ch " << c << " m " << m;
      ASSERT_EQ(std::memcmp(&a2[m], &b2[m], sizeof(float)), 0)
          << "x2 stale at step " << step << " ch " << c << " m " << m;
      ASSERT_EQ(std::memcmp(&av[m], &bv[m], sizeof(float)), 0)
          << "v stale at step " << step << " ch " << c << " m " << m;
    }
  }
}

TEST(PackedStream, PerMetreRetroFillAndEvictionStayBitIdenticalToColdPack) {
  core::ContextTrajectory t(kChannels, kCapacity);
  core::PackedContext pack;

  // 600 metres: ~64 metres of pure growth, then steady-state eviction with
  // retro-fill mutating the packed tail EVERY metre.
  for (std::uint64_t step = 0; step < 600; ++step) {
    append_metre(t);
    retro_fill(t, step);
    (void)pack.sync(t);
    ASSERT_TRUE(pack.in_sync_with(t)) << "step " << step;
    expect_pack_matches_cold(pack, t, step);
  }
}

TEST(PackedStream, BurstGrowthBetweenSyncs) {
  core::ContextTrajectory t(kChannels, kCapacity);
  core::PackedContext pack;
  util::HashNoise noise(0xB00);

  // Variable ingest cadence: 1..5 metres land between syncs (a vehicle
  // outrunning its telemetry loop), retro-fill between every append.
  std::uint64_t step = 0;
  while (step < 500) {
    const auto burst =
        1 + static_cast<std::size_t>(
                noise.uniform(static_cast<std::int64_t>(step)) * 4.0);
    for (std::size_t b = 0; b < burst; ++b) {
      append_metre(t);
      retro_fill(t, step + b);
    }
    step += burst;
    (void)pack.sync(t);
    expect_pack_matches_cold(pack, t, step);
  }
}

TEST(PackedStream, RetroFillDeeperThanSuffixForcesDetectableRepack) {
  // The incremental contract: sync()'s volatile suffix must cover the
  // binder's retro-fill reach. Verify the guard holds exactly at the
  // default reach (40 < kDefaultVolatileSuffixM == 48) even when eviction
  // happens on the same sync.
  static_assert(kRetroReach < core::PackedContext::kDefaultVolatileSuffixM,
                "volatile suffix must cover binder retro-fill");
  core::ContextTrajectory t(kChannels, kCapacity);
  core::PackedContext pack;
  for (std::uint64_t step = 0; step < 200; ++step) {
    append_metre(t);
    if (t.size() > kRetroReach) {
      // Mutate the entry EXACTLY at the reach boundary every step.
      core::PowerVector& power =
          t.mutable_power(t.size() - kRetroReach);
      power.set(static_cast<std::size_t>(step) % kChannels,
                value_at(step, step % kChannels, 2),
                core::ChannelState::kInterpolated);
    }
    (void)pack.sync(t);
    expect_pack_matches_cold(pack, t, step);
  }
}

}  // namespace
}  // namespace rups
