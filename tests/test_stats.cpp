#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rups::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.01;
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95Shrinks) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(MeanStddev, Basics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(mean(std::span<const double>{}), 0.0);
  EXPECT_EQ(stddev(std::span<const double>{}), 0.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{3, 2, 1};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 2, 3};
  EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(Pearson, ShiftAndScaleInvariant) {
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(std::sin(i));
    b.push_back(5.0 * std::sin(i) - 100.0);
  }
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(EmpiricalCdf, StepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, Quantile) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 30.0);
}

TEST(EmpiricalCdf, GridIsMonotone) {
  EmpiricalCdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
  const auto grid = cdf.grid(0.0, 6.0, 13);
  ASSERT_EQ(grid.size(), 13u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GE(grid[i].second, grid[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(grid.front().second, 0.0);
  EXPECT_DOUBLE_EQ(grid.back().second, 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
}

TEST(Histogram, RejectsDegenerate) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rups::util
