// Shutdown-ordering contract for the ops plane: with a campaign's spans
// flowing into a ChromeTraceSink while the sampling profiler and the
// /metrics exporter run, tearing everything down mid-run in the documented
// order (profiler -> exporter -> trace sink) must leave a parseable trace
// JSON file and no stuck threads. This is the test the sanitizer lanes
// replay for data races in the teardown path.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/expo.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "sim/fleet_sim.hpp"
#include "util/json.hpp"

namespace rups::obs {
namespace {

TEST(OpsShutdown, OrderedTeardownLeavesParseableTrace) {
  const std::filesystem::path trace_path = "ops_shutdown_trace.json";
  std::filesystem::remove(trace_path);

  {
    ChromeTraceSink sink(trace_path);
    ASSERT_TRUE(sink.ok());
    set_trace_sink(&sink);

    SpanProfiler profiler;
    profiler.start();
    MetricsExporter exporter({},
                             [] { return Registry::global().snapshot(); });
    ASSERT_TRUE(exporter.start());

    // A short campaign emits real nested spans through the sink while the
    // profiler samples them and the exporter serves scrapes.
    sim::Scenario scenario =
        sim::Scenario::fleet(5, road::EnvironmentType::kFourLaneUrban, 3);
    sim::FleetCampaignConfig cfg;
    cfg.base.max_queries = 4;
    sim::FleetSimulation fleet(scenario, cfg);
    (void)sim::run_fleet_campaign(fleet, cfg);

    std::string body;
    EXPECT_EQ(http_get("127.0.0.1", exporter.port(), "/metrics", body), 200);
    EXPECT_FALSE(body.empty());
    EXPECT_GT(sink.events_written(), 0u);

    // The documented order: sampler first (it reads span stacks), then the
    // exporter (it reads the registry), then detach + close the sink.
    profiler.stop();
    EXPECT_GT(profiler.profile().ticks, 0u);
    exporter.stop();
    set_trace_sink(nullptr);
    sink.close();
  }

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  util::JsonValue doc;
  ASSERT_NO_THROW(doc = util::JsonValue::parse(buf.str()))
      << "trace JSON left unparseable by teardown";
  ASSERT_TRUE(doc.is_array());
  EXPECT_FALSE(doc.as_array().empty());
  std::filesystem::remove(trace_path);
}

TEST(OpsShutdown, TeardownWithoutExplicitCloseStillParses) {
  // Destructor-driven teardown (the abort-safe path trace_tool relies on
  // when finish() is bypassed): destroying the sink must close the JSON
  // array even though close() was never called.
  const std::filesystem::path trace_path = "ops_shutdown_trace2.json";
  std::filesystem::remove(trace_path);
  {
    ChromeTraceSink sink(trace_path);
    ASSERT_TRUE(sink.ok());
    set_trace_sink(&sink);
    SpanProfiler profiler;
    profiler.start();
    {
      Histogram& h = Registry::global().histogram("opsshutdown.scratch_us");
      ObsTimer span(&h, "opsshutdown.work");
    }
    profiler.stop();
    set_trace_sink(nullptr);
  }
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NO_THROW((void)util::JsonValue::parse(buf.str()));
  std::filesystem::remove(trace_path);
}

}  // namespace
}  // namespace rups::obs
