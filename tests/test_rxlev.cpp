#include "gsm/rxlev.hpp"

#include <gtest/gtest.h>

namespace rups::gsm {
namespace {

TEST(RxLev, FloorAndCeiling) {
  EXPECT_EQ(RxLev::from_dbm(-200.0), 0);
  EXPECT_EQ(RxLev::from_dbm(-110.5), 0);
  EXPECT_EQ(RxLev::from_dbm(-20.0), 63);
  EXPECT_EQ(RxLev::from_dbm(-48.0), 63);
}

TEST(RxLev, MidScaleSteps) {
  // RXLEV n covers [-110 + n - 1, -110 + n) dBm for 1 <= n <= 62.
  EXPECT_EQ(RxLev::from_dbm(-110.0), 1);
  EXPECT_EQ(RxLev::from_dbm(-109.5), 1);
  EXPECT_EQ(RxLev::from_dbm(-109.0), 2);
  EXPECT_EQ(RxLev::from_dbm(-80.0), 31);
  EXPECT_EQ(RxLev::from_dbm(-49.0), 62);
}

TEST(RxLev, ToDbmRepresentatives) {
  EXPECT_DOUBLE_EQ(RxLev::to_dbm(0), -110.0);
  EXPECT_DOUBLE_EQ(RxLev::to_dbm(63), -48.0);
  EXPECT_DOUBLE_EQ(RxLev::to_dbm(1), -109.5);
}

TEST(RxLev, QuantizeWithinOneDb) {
  for (double dbm = -109.9; dbm < -48.1; dbm += 0.37) {
    const double q = RxLev::quantize_dbm(dbm);
    EXPECT_NEAR(q, dbm, 1.0) << "at " << dbm;
  }
}

TEST(RxLev, QuantizeMonotone) {
  double prev = RxLev::quantize_dbm(-115.0);
  for (double dbm = -114.0; dbm <= -40.0; dbm += 0.5) {
    const double q = RxLev::quantize_dbm(dbm);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

}  // namespace
}  // namespace rups::gsm
