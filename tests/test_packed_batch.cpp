#include "core/packed.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

// Pins the lag-batched kernel's contract: packed_correlation_batch (and
// every explicit lane width) scores each position BIT-IDENTICALLY to a
// per-position packed_correlation call, across randomized window sizes,
// position strides, row maps (identity, channel-id, out-of-range, k > 128),
// partial usability masks, and block-boundary/remainder batch shapes. The
// determinism guarantees of SynSeeker / SynCache / FleetEngine all reduce
// to this property.

namespace rups::core {
namespace {

ContextTrajectory random_context(util::Rng& rng, std::size_t metres,
                                 std::size_t channels,
                                 double usable_fraction) {
  ContextTrajectory t(channels, metres);
  for (std::size_t i = 0; i < metres; ++i) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if (rng.uniform() > usable_fraction) continue;  // leave unusable
      pv.set(c, static_cast<float>(-110.0 + 60.0 * rng.uniform()));
    }
    t.append(GeoSample{}, std::move(pv));
  }
  return t;
}

std::vector<std::size_t> identity_rows(std::size_t k) {
  std::vector<std::size_t> rows(k);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return rows;
}

/// memcmp-strict equality: EXPECT_EQ on doubles would already reject any
/// value difference, but byte comparison also pins the sign of zero.
void expect_bit_equal(double want, double got, const char* what,
                      std::size_t q) {
  EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0)
      << what << " lane " << q << ": want " << want << " got " << got;
}

void expect_batch_matches_scalar(const PackedView& fixed,
                                 std::size_t fixed_start,
                                 const PackedView& sliding, std::size_t pos_lo,
                                 std::size_t pos_count, std::size_t window,
                                 std::size_t stride,
                                 const TrajectoryCorrelationConfig& config,
                                 const char* what) {
  std::vector<double> got(pos_count, 0.0);
  packed_correlation_batch(fixed, fixed_start, sliding, pos_lo, pos_count,
                           window, config, got.data(), stride);
  for (std::size_t q = 0; q < pos_count; ++q) {
    const double want = packed_correlation(
        fixed, fixed_start, sliding, pos_lo + q * stride, window, config);
    expect_bit_equal(want, got[q], what, q);
  }
}

TEST(PackedBatch, RandomizedWindowsStridesMasksAndRemainders) {
  util::Rng rng(2024);
  const TrajectoryCorrelationConfig config{};
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t channels = 8 + static_cast<std::size_t>(
                                         rng.uniform() * 32.0);
    const std::size_t window = 17 + static_cast<std::size_t>(
                                        rng.uniform() * 100.0);
    const std::size_t stride = 1 + static_cast<std::size_t>(
                                       rng.uniform() * 4.0);
    // Batch shapes around the block boundary: below, at, above, and
    // multi-block with a remainder.
    const std::size_t shapes[] = {1,
                                  kLagBlock - 1,
                                  kLagBlock,
                                  kLagBlock + 1,
                                  2 * kLagBlock,
                                  2 * kLagBlock + 5};
    const std::size_t pos_count = shapes[trial % 6];
    const std::size_t pos_lo =
        static_cast<std::size_t>(rng.uniform() * 7.0);
    // Heavily masked trials exercise the excluded-lane (select) path and
    // the -2.0 not-enough-channels sentinel.
    const double usable = (trial % 3 == 0) ? 0.35 : 0.9;
    const std::size_t sliding_metres =
        pos_lo + (pos_count - 1) * stride + window;

    const auto fa = random_context(rng, window + 4, channels, usable);
    const auto sb = random_context(rng, sliding_metres, channels, usable);
    const auto rows = identity_rows(channels);
    const SubsetPack fixed_pack(fa, rows, 2, window);
    const SubsetPack slide_pack(sb, rows, 0, sliding_metres);
    expect_batch_matches_scalar({fixed_pack.span(), rows}, 0,
                                {slide_pack.span(), rows}, pos_lo, pos_count,
                                window, stride, config, "randomized");
  }
}

TEST(PackedBatch, ChannelIdRowMapsIncludingOutOfRange) {
  // PackedContext views address rows by CHANNEL ID; ids beyond either
  // pack's width must be skipped identically by batch and scalar paths.
  util::Rng rng(7);
  const std::size_t channels = 36;
  const std::size_t window = 50;
  const auto a = random_context(rng, 120, channels, 0.85);
  const auto b = random_context(rng, 220, channels, 0.85);
  PackedContext pa;
  PackedContext pb;
  pa.sync(a);
  pb.sync(b);

  std::vector<std::size_t> rows;
  for (int k = 0; k < 20; ++k) {
    rows.push_back(static_cast<std::size_t>(rng.uniform() * channels));
  }
  rows.push_back(channels + 3);   // out of range: skipped
  rows.push_back(channels + 40);  // far out of range: skipped
  const TrajectoryCorrelationConfig config{};
  expect_batch_matches_scalar({pa.span(), rows}, 30, {pb.span(), rows}, 0,
                              220 - window + 1, window, 1, config,
                              "channel-id rows");
}

TEST(PackedBatch, WideRowMapBeyond128Channels) {
  util::Rng rng(11);
  const std::size_t channels = 160;  // > the reference's 128 stack slots
  const std::size_t window = 40;
  const auto a = random_context(rng, 90, channels, 0.8);
  const auto b = random_context(rng, 150, channels, 0.8);
  const auto rows = identity_rows(channels);
  const SubsetPack fixed_pack(a, rows, 10, window);
  const SubsetPack slide_pack(b, rows, 0, 150);
  const TrajectoryCorrelationConfig config{};
  expect_batch_matches_scalar({fixed_pack.span(), rows}, 0,
                              {slide_pack.span(), rows}, 0, 150 - window + 1,
                              window, 1, config, "k>128");
}

TEST(PackedBatch, AllLaneWidthsAreBitIdentical) {
  // The tuning surface: every explicit lane width (1 = per-position scalar
  // loop) must reproduce the production batch bit-for-bit — the per-lane
  // accumulation order never depends on the block shape.
  util::Rng rng(13);
  const std::size_t channels = 30;
  const std::size_t window = 70;
  const std::size_t pos_count = 77;  // multi-block + remainder for all B
  const auto a = random_context(rng, window + 2, channels, 0.9);
  const auto b = random_context(rng, pos_count - 1 + window, channels, 0.9);
  const auto rows = identity_rows(channels);
  const SubsetPack fixed_pack(a, rows, 0, window);
  const SubsetPack slide_pack(b, rows, 0, pos_count - 1 + window);
  const PackedView fixed{fixed_pack.span(), rows};
  const PackedView sliding{slide_pack.span(), rows};
  const TrajectoryCorrelationConfig config{};

  std::vector<double> want(pos_count, 0.0);
  packed_correlation_batch(fixed, 0, sliding, 0, pos_count, window, config,
                           want.data());
  for (const std::size_t lanes : {1UL, 4UL, 8UL, 16UL}) {
    std::vector<double> got(pos_count, 0.0);
    packed_correlation_batch_lanes(lanes, fixed, 0, sliding, 0, pos_count,
                                   window, config, got.data());
    for (std::size_t q = 0; q < pos_count; ++q) {
      expect_bit_equal(want[q], got[q], "lane width", q);
    }
  }
}

}  // namespace
}  // namespace rups::core
