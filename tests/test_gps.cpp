#include "sensors/gps.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "road/route_builder.hpp"
#include "util/stats.hpp"

namespace rups::sensors {
namespace {

vehicle::VehicleState state_on(const road::Route& route, double s, double t) {
  vehicle::VehicleState st;
  st.time_s = t;
  st.position_m = s;
  st.pose = route.pose_at(s);
  return st;
}

TEST(GpsErrorModel, ScalesByEnvironment) {
  const auto suburb = GpsEnvErrorModel::for_environment(
      road::EnvironmentType::kTwoLaneSuburb);
  const auto urban = GpsEnvErrorModel::for_environment(
      road::EnvironmentType::kFourLaneUrban);
  const auto elevated = GpsEnvErrorModel::for_environment(
      road::EnvironmentType::kUnderElevated);
  EXPECT_LT(suburb.bias_sigma_m, urban.bias_sigma_m);
  EXPECT_LT(urban.bias_sigma_m, elevated.bias_sigma_m);
  EXPECT_LT(suburb.outage_probability, elevated.outage_probability);
  EXPECT_GT(elevated.outage_probability, 0.2);
}

TEST(Gps, FixRateRespected) {
  const auto route = road::make_uniform_route(
      1, road::EnvironmentType::kTwoLaneSuburb, 1'000.0);
  GpsModel gps(1);
  int fixes = 0;
  for (int i = 0; i <= 1000; ++i) {  // 10 s at 100 Hz
    if (gps.maybe_fix(state_on(route, i * 0.1, i * 0.01)).has_value()) {
      ++fixes;
    }
  }
  EXPECT_GE(fixes, 10);
  EXPECT_LE(fixes, 12);
}

TEST(Gps, ErrorMagnitudePerEnvironment) {
  for (auto [env, lo, hi] :
       {std::tuple{road::EnvironmentType::kTwoLaneSuburb, 0.5, 6.0},
        std::tuple{road::EnvironmentType::kFourLaneUrban, 2.0, 12.0},
        std::tuple{road::EnvironmentType::kUnderElevated, 4.0, 25.0}}) {
    const auto route = road::make_uniform_route(2, env, 50'000.0);
    GpsModel gps(3);
    util::RunningStats err;
    for (int i = 0; i < 3000; ++i) {
      const auto st = state_on(route, i * 10.0, i * 1.0);
      const auto fix = gps.maybe_fix(st);
      if (fix && fix->valid) {
        const double dx = fix->x_m - st.pose.position.x;
        const double dy = fix->y_m - st.pose.position.y;
        err.add(std::sqrt(dx * dx + dy * dy));
      }
    }
    ASSERT_GT(err.count(), 100u) << road::to_string(env);
    EXPECT_GT(err.mean(), lo) << road::to_string(env);
    EXPECT_LT(err.mean(), hi) << road::to_string(env);
  }
}

TEST(Gps, UnderElevatedHasOutages) {
  const auto route = road::make_uniform_route(
      4, road::EnvironmentType::kUnderElevated, 50'000.0);
  GpsModel gps(5);
  int valid = 0, invalid = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto fix = gps.maybe_fix(state_on(route, i * 10.0, i * 1.0));
    if (!fix) continue;
    (fix->valid ? valid : invalid)++;
  }
  EXPECT_GT(invalid, 100);  // ~35% outage
  EXPECT_GT(valid, 500);
}

TEST(Gps, TwoReceiversIndependentErrors) {
  const auto route = road::make_uniform_route(
      6, road::EnvironmentType::kFourLaneUrban, 50'000.0);
  GpsModel a(10), b(11);
  std::vector<double> ea, eb;
  for (int i = 0; i < 1500; ++i) {
    const auto st = state_on(route, i * 10.0, i * 1.0);
    const auto fa = a.maybe_fix(st);
    const auto fb = b.maybe_fix(st);
    if (fa && fb && fa->valid && fb->valid) {
      ea.push_back(fa->x_m - st.pose.position.x);
      eb.push_back(fb->x_m - st.pose.position.x);
    }
  }
  ASSERT_GT(ea.size(), 500u);
  EXPECT_LT(std::abs(util::pearson(ea, eb)), 0.25);
}

TEST(Gps, BiasIsTemporallyCorrelated) {
  // Consecutive fixes share the multipath bias: the error one second apart
  // must correlate strongly — this is what defeats naive GPS averaging.
  const auto route = road::make_uniform_route(
      7, road::EnvironmentType::kFourLaneUrban, 50'000.0);
  GpsModel gps(12);
  std::vector<double> now, next;
  double prev_err = 0.0;
  bool have_prev = false;
  for (int i = 0; i < 2000; ++i) {
    const auto st = state_on(route, i * 10.0, i * 1.0);
    const auto fix = gps.maybe_fix(st);
    if (fix && fix->valid) {
      const double err = fix->x_m - st.pose.position.x;
      if (have_prev) {
        now.push_back(prev_err);
        next.push_back(err);
      }
      prev_err = err;
      have_prev = true;
    } else {
      have_prev = false;
    }
  }
  ASSERT_GT(now.size(), 500u);
  EXPECT_GT(util::pearson(now, next), 0.7);
}

}  // namespace
}  // namespace rups::sensors
