#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace rups::obs {
namespace {

TEST(FamilyCellName, PrometheusStyleAndIntegerLabels) {
  EXPECT_EQ(family_cell_name("v2v.delivery_outcome", "outcome", "degraded"),
            "v2v.delivery_outcome{outcome=\"degraded\"}");
  EXPECT_EQ(label_of(0), "0");
  EXPECT_EQ(label_of(17), "17");
  EXPECT_EQ(family_cell_name("estimate.staleness_s", "neighbour", label_of(3)),
            "estimate.staleness_s{neighbour=\"3\"}");
}

TEST(CounterFamilyTest, CellsAreStablePerLabel) {
  Registry reg;
  CounterFamily& fam = reg.counter_family("query_outcome", "outcome");
  Counter& hit = fam.with("hit");
  Counter& miss = fam.with("miss");
  EXPECT_NE(&hit, &miss);
  EXPECT_EQ(&fam.with("hit"), &hit);
  hit.inc(3);
  miss.inc();
  EXPECT_EQ(fam.with("hit").value(), 3u);
  EXPECT_EQ(fam.with("miss").value(), 1u);
  EXPECT_EQ(fam.cells(), 2u);
  EXPECT_EQ(fam.name(), "query_outcome");
  EXPECT_EQ(fam.label_key(), "outcome");
}

TEST(CounterFamilyTest, IntegerLabelsRouteThroughLabelOf) {
  Registry reg;
  CounterFamily& fam = reg.counter_family("fleet.query_outcome", "neighbour");
  fam.with(std::uint64_t{5}).inc(2);
  EXPECT_EQ(&fam.with(std::uint64_t{5}), &fam.with("5"));
  EXPECT_EQ(fam.with("5").value(), 2u);
}

TEST(CounterFamilyTest, RegistryReturnsSameFamilyForSameName) {
  Registry reg;
  CounterFamily& a = reg.counter_family("f", "k", 8);
  // label_key and max_cells are fixed on first creation.
  CounterFamily& b = reg.counter_family("f", "other_key", 99);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.label_key(), "k");
  EXPECT_EQ(b.max_cells(), 8u);
}

TEST(CounterFamilyTest, SnapshotEmitsSortedLabeledCells) {
  Registry reg;
  reg.counter("aaa.plain").inc();
  CounterFamily& fam = reg.counter_family("zz.outcome", "outcome");
  fam.with("miss").inc(2);
  fam.with("hit").inc(5);

  // Creating a family also materializes the registry-wide drop counter.
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 4u);
  EXPECT_EQ(snap.counters[0].name, "aaa.plain");
  EXPECT_EQ(snap.counters[1].name, kLabelsDroppedCounter);
  EXPECT_EQ(snap.counters[2].name, "zz.outcome{outcome=\"hit\"}");
  EXPECT_EQ(snap.counters[3].name, "zz.outcome{outcome=\"miss\"}");
  EXPECT_EQ(snap.counters[2].value, 5u);
  EXPECT_EQ(snap.counters[3].value, 2u);
}

TEST(GaugeFamilyTest, PerLabelLastWriteWins) {
  Registry reg;
  GaugeFamily& fam = reg.gauge_family("estimate.staleness_s", "neighbour");
  fam.with(std::uint64_t{0}).set(1.5);
  fam.with(std::uint64_t{1}).set(4.0);
  fam.with(std::uint64_t{0}).set(2.5);
  const MetricsSnapshot snap = reg.snapshot();
  const auto* g0 = snap.gauge("estimate.staleness_s{neighbour=\"0\"}");
  const auto* g1 = snap.gauge("estimate.staleness_s{neighbour=\"1\"}");
  ASSERT_NE(g0, nullptr);
  ASSERT_NE(g1, nullptr);
  EXPECT_DOUBLE_EQ(g0->value, 2.5);
  EXPECT_DOUBLE_EQ(g1->value, 4.0);
}

TEST(HistogramFamilyTest, CellsShareTheFamilyBounds) {
  Registry reg;
  HistogramFamily& fam =
      reg.histogram_family("fleet.task_us", "neighbour", {10.0, 100.0});
  fam.with(std::uint64_t{0}).record(5.0);
  fam.with(std::uint64_t{0}).record(50.0);
  fam.with(std::uint64_t{1}).record(500.0);
  EXPECT_EQ(fam.with(std::uint64_t{0}).bounds(),
            (std::vector<double>{10.0, 100.0}));
  const MetricsSnapshot snap = reg.snapshot();
  const auto* h0 = snap.histogram("fleet.task_us{neighbour=\"0\"}");
  const auto* h1 = snap.histogram("fleet.task_us{neighbour=\"1\"}");
  ASSERT_NE(h0, nullptr);
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h0->count, 2u);
  EXPECT_EQ(h1->count, 1u);
  ASSERT_EQ(h1->buckets.size(), 3u);
  EXPECT_EQ(h1->buckets[2], 1u);  // 500 lands in the unbounded bucket
}

TEST(CardinalityCap, NewLabelsPastTheCapShareOneOverflowCell) {
  Registry reg;
  CounterFamily& fam = reg.counter_family("capped", "id", /*max_cells=*/3);
  Counter& dropped = reg.counter(kLabelsDroppedCounter);
  fam.with("a").inc();
  fam.with("b").inc();
  fam.with("c").inc();
  EXPECT_EQ(dropped.value(), 0u);

  // Cap reached: every NEW label routes to __overflow__ and each routed
  // call counts one drop. Existing labels keep their dedicated cells.
  fam.with("d").inc();
  fam.with("e").inc();
  fam.with("d").inc();
  EXPECT_EQ(dropped.value(), 3u);
  EXPECT_EQ(fam.with(kOverflowLabel).value(), 3u);
  fam.with("a").inc();
  EXPECT_EQ(fam.with("a").value(), 2u);
  EXPECT_EQ(dropped.value(), 3u);

  const MetricsSnapshot snap = reg.snapshot();
  const auto* overflow = snap.counter("capped{id=\"__overflow__\"}");
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->value, 3u);
  EXPECT_EQ(snap.counter("capped{id=\"d\"}"), nullptr);
}

TEST(CardinalityCap, TotalCountsAreLosslessAcrossOverflow) {
  Registry reg;
  CounterFamily& fam = reg.counter_family("lossless", "id", /*max_cells=*/4);
  constexpr std::uint64_t kLabels = 20;
  constexpr std::uint64_t kIncsPerLabel = 7;
  for (std::uint64_t label = 0; label < kLabels; ++label) {
    for (std::uint64_t i = 0; i < kIncsPerLabel; ++i) fam.with(label).inc();
  }
  std::uint64_t total = 0;
  for (const auto& c : reg.snapshot().counters) total += c.value;
  EXPECT_EQ(total - reg.counter(kLabelsDroppedCounter).value(),
            kLabels * kIncsPerLabel);
}

TEST(FamilyConcurrency, ChurningWritersAndSnapshotReadersDoNotTear) {
  // N writer tasks create and increment cells (some labels shared, some
  // task-private) while one task snapshots in a loop. Every increment must
  // land somewhere: dedicated cell or overflow, never lost.
  Registry reg;
  CounterFamily& fam =
      reg.counter_family("churn.outcome", "id", /*max_cells=*/8);
  util::ThreadPool pool(4);
  constexpr std::size_t kWriters = 8;
  constexpr std::size_t kIncsPerWriter = 20'000;
  std::atomic<std::size_t> snapshots_taken{0};

  pool.parallel_for(0, kWriters + 1, [&](std::size_t task) {
    if (task == 0) {
      // Reader: every snapshot taken during the churn must be internally
      // consistent (name-sorted, family cells included exactly once).
      for (int i = 0; i < 300; ++i) {
        const MetricsSnapshot snap = reg.snapshot();
        for (std::size_t j = 1; j < snap.counters.size(); ++j) {
          ASSERT_LT(snap.counters[j - 1].name, snap.counters[j].name);
        }
        snapshots_taken.fetch_add(1);
      }
      return;
    }
    for (std::size_t i = 0; i < kIncsPerWriter; ++i) {
      // Mix of a shared hot label, a per-writer label, and a rotating
      // label that overflows the cap.
      fam.with("shared").inc();
      fam.with(static_cast<std::uint64_t>(task)).inc();
      fam.with(100 + static_cast<std::uint64_t>(i % 16)).inc();
    }
  });

  EXPECT_EQ(snapshots_taken.load(), 300u);
  // Cap honored: at most max_cells dedicated cells plus the overflow cell.
  EXPECT_LE(fam.cells(), fam.max_cells() + 1);
  std::uint64_t total = 0;
  for (const auto& c : reg.snapshot().counters) {
    if (c.name.rfind("churn.outcome{", 0) == 0) total += c.value;
  }
  EXPECT_EQ(total, kWriters * kIncsPerWriter * 3);
  EXPECT_GT(reg.counter(kLabelsDroppedCounter).value(), 0u);
}

TEST(FamilyConcurrency, ResetZeroesCellsButKeepsThem) {
  Registry reg;
  CounterFamily& fam = reg.counter_family("r", "k");
  fam.with("a").inc(5);
  fam.with("b").inc(2);
  reg.reset();
  EXPECT_EQ(fam.cells(), 2u);
  EXPECT_EQ(fam.with("a").value(), 0u);
  EXPECT_EQ(fam.with("b").value(), 0u);
}

}  // namespace
}  // namespace rups::obs
