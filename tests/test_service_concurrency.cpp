#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "service/matcher_service.hpp"
#include "sim/service_sim.hpp"
#include "util/thread_pool.hpp"

// Pooled-drain stress for the sharded matcher service, written for the
// ThreadSanitizer lane: shards are sliced across pool workers every round,
// so any cross-shard data sharing (arena slots, ticket table, metric
// handles, queue internals) that is not actually private-per-shard shows
// up as a race here. The serial-vs-pooled equality assertion doubles as a
// quick determinism check in non-TSan runs.

namespace rups::service {
namespace {

struct RoundDigest {
  std::uint64_t estimates = 0;
  double distance_sum = 0.0;

  friend bool operator==(const RoundDigest&, const RoundDigest&) = default;
};

std::vector<RoundDigest> drive(util::ThreadPool* pool) {
  sim::CityFleetConfig city_cfg;
  city_cfg.vehicles = 16;
  city_cfg.channels = 24;
  city_cfg.context_capacity_m = 120;
  city_cfg.spacing_m = 22.0;
  sim::CityFleet city(city_cfg);

  ServiceConfig cfg;
  cfg.shard_count = 4;
  cfg.cell_m = 60.0;
  cfg.queue_capacity = 32;
  cfg.max_vehicles = city_cfg.vehicles;
  cfg.max_sessions = 64;
  cfg.fleet.rups.channels = city_cfg.channels;
  cfg.fleet.rups.context_capacity_m = city_cfg.context_capacity_m;
  MatcherService svc(cfg);
  for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
    EXPECT_TRUE(svc.register_vehicle(city.vehicle_id(v), city.position(v)));
  }

  std::vector<RoundDigest> digests;
  std::vector<MatcherService::Ticket> tickets;
  for (std::size_t round = 0; round < 12; ++round) {
    city.advance_round();
    svc.begin_round();
    for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
      for (const sim::CityFleet::Sample& s : city.samples(v)) {
        EXPECT_TRUE(
            svc.observe(city.vehicle_id(v), s.position_m, s.geo, s.power));
      }
    }
    if (round < 4) continue;

    tickets.clear();
    for (const sim::CityFleet::Query& q : city.queries()) {
      tickets.push_back(
          svc.submit(city.vehicle_id(q.ego), city.vehicle_id(q.neighbour)));
    }
    svc.drain(pool);

    RoundDigest digest;
    for (const auto& t : tickets) {
      if (!t.accepted()) continue;
      const auto& r = svc.result(t);
      if (r.estimate.has_value()) {
        ++digest.estimates;
        digest.distance_sum += r.estimate->distance_m;
      }
    }
    digests.push_back(digest);
  }
  return digests;
}

TEST(ServiceConcurrency, PooledDrainsRaceFreeAndMatchSerial) {
  const std::vector<RoundDigest> serial = drive(nullptr);

  std::uint64_t total = 0;
  for (const RoundDigest& d : serial) total += d.estimates;
  ASSERT_GT(total, 0u) << "stress workload produced no estimates";

  // Several pooled passes: scheduling varies per pass, results must not.
  for (int pass = 0; pass < 3; ++pass) {
    util::ThreadPool pool(4);
    EXPECT_EQ(drive(&pool), serial) << "pass " << pass;
  }
}

}  // namespace
}  // namespace rups::service
