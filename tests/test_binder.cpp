#include "core/binder.hpp"

#include <gtest/gtest.h>

namespace rups::core {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  ContextTrajectory traj_{4, 100};
  TrajectoryBinder binder_{4};
};

TEST_F(BinderTest, MeasurementLandsInItsMetre) {
  binder_.add_measurement(0, 0.3, -70.0f, traj_);
  binder_.bind_metre(0, GeoSample{0.1, 1.0}, traj_);
  ASSERT_EQ(traj_.size(), 1u);
  EXPECT_TRUE(traj_.power(0).measured(0));
  EXPECT_FLOAT_EQ(traj_.power(0).at(0), -70.0f);
  EXPECT_DOUBLE_EQ(traj_.geo(0).heading_rad, 0.1);
}

TEST_F(BinderTest, FutureMeasurementBuffered) {
  binder_.add_measurement(1, 2.5, -60.0f, traj_);  // metre 2, not yet open
  binder_.bind_metre(0, GeoSample{}, traj_);
  binder_.bind_metre(1, GeoSample{}, traj_);
  EXPECT_FALSE(traj_.power(0).usable(1));
  EXPECT_FALSE(traj_.power(1).usable(1));
  binder_.bind_metre(2, GeoSample{}, traj_);
  EXPECT_TRUE(traj_.power(2).measured(1));
}

TEST_F(BinderTest, LateMeasurementRetrofills) {
  binder_.bind_metre(0, GeoSample{}, traj_);
  binder_.bind_metre(1, GeoSample{}, traj_);
  EXPECT_FALSE(traj_.power(0).usable(2));
  binder_.add_measurement(2, 0.4, -55.0f, traj_);  // metre 0, late
  EXPECT_TRUE(traj_.power(0).measured(2));
}

TEST_F(BinderTest, LateMeasurementDoesNotOverwriteMeasured) {
  binder_.add_measurement(0, 0.5, -70.0f, traj_);
  binder_.bind_metre(0, GeoSample{}, traj_);
  binder_.add_measurement(0, 0.6, -90.0f, traj_);  // late duplicate
  EXPECT_FLOAT_EQ(traj_.power(0).at(0), -70.0f);
}

TEST_F(BinderTest, InterpolatesGapsLinearly) {
  // Channel 0 measured at metres 0 and 4; metres 1..3 must be interpolated.
  binder_.add_measurement(0, 0.0, -60.0f, traj_);
  binder_.bind_metre(0, GeoSample{}, traj_);
  binder_.bind_metre(1, GeoSample{}, traj_);
  binder_.bind_metre(2, GeoSample{}, traj_);
  binder_.bind_metre(3, GeoSample{}, traj_);
  binder_.add_measurement(0, 4.2, -68.0f, traj_);
  binder_.bind_metre(4, GeoSample{}, traj_);
  EXPECT_EQ(traj_.power(1).state(0), ChannelState::kInterpolated);
  EXPECT_FLOAT_EQ(traj_.power(1).at(0), -62.0f);
  EXPECT_FLOAT_EQ(traj_.power(2).at(0), -64.0f);
  EXPECT_FLOAT_EQ(traj_.power(3).at(0), -66.0f);
  EXPECT_TRUE(traj_.power(4).measured(0));
}

TEST_F(BinderTest, NoInterpolationBeyondMaxGap) {
  TrajectoryBinder::Config cfg;
  cfg.max_interpolation_gap_m = 3;
  TrajectoryBinder binder(4, cfg);
  binder.add_measurement(0, 0.0, -60.0f, traj_);
  binder.bind_metre(0, GeoSample{}, traj_);
  for (std::uint64_t m = 1; m <= 4; ++m) binder.bind_metre(m, GeoSample{}, traj_);
  binder.add_measurement(0, 5.0, -70.0f, traj_);
  binder.bind_metre(5, GeoSample{}, traj_);
  // Gap of 5 > 3: stays missing.
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(traj_.power(i).state(0), ChannelState::kMissing) << i;
  }
}

TEST_F(BinderTest, InterpolationDisabledByConfig) {
  TrajectoryBinder::Config cfg;
  cfg.interpolate = false;
  TrajectoryBinder binder(4, cfg);
  binder.add_measurement(0, 0.0, -60.0f, traj_);
  binder.bind_metre(0, GeoSample{}, traj_);
  binder.bind_metre(1, GeoSample{}, traj_);
  binder.add_measurement(0, 2.0, -70.0f, traj_);
  binder.bind_metre(2, GeoSample{}, traj_);
  EXPECT_EQ(traj_.power(1).state(0), ChannelState::kMissing);
}

TEST_F(BinderTest, SkippedMetresGetEmptyVectors) {
  binder_.bind_metre(3, GeoSample{0.5, 9.0}, traj_);
  EXPECT_EQ(traj_.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(traj_.power(i).usable_count(), 0u);
    EXPECT_DOUBLE_EQ(traj_.geo(i).heading_rad, 0.5);
  }
}

TEST_F(BinderTest, NonMonotoneBindThrows) {
  binder_.bind_metre(2, GeoSample{}, traj_);
  EXPECT_THROW(binder_.bind_metre(1, GeoSample{}, traj_),
               std::invalid_argument);
}

TEST_F(BinderTest, ChannelOutOfRangeThrows) {
  EXPECT_THROW(binder_.add_measurement(4, 0.0, -70.0f, traj_),
               std::out_of_range);
}

TEST_F(BinderTest, NegativeDistanceClampsToMetreZero) {
  binder_.add_measurement(0, -0.7, -70.0f, traj_);
  binder_.bind_metre(0, GeoSample{}, traj_);
  EXPECT_TRUE(traj_.power(0).measured(0));
}

TEST_F(BinderTest, InterpolationSurvivesEviction) {
  // Tiny capacity: interpolation across a gap whose left end was evicted
  // must not crash and must fill only retained metres.
  ContextTrajectory small(2, 3);
  TrajectoryBinder binder(2);
  binder.add_measurement(0, 0.0, -60.0f, small);
  binder.bind_metre(0, GeoSample{}, small);
  for (std::uint64_t m = 1; m <= 9; ++m) binder.bind_metre(m, GeoSample{}, small);
  binder.add_measurement(0, 10.0, -80.0f, small);
  binder.bind_metre(10, GeoSample{}, small);
  EXPECT_EQ(small.size(), 3u);
  // Metres 8..9 retained and inside the 10-metre gap: interpolated.
  EXPECT_EQ(small.power(small.index_of_metre(9)).state(0),
            ChannelState::kInterpolated);
}

TEST_F(BinderTest, MultipleChannelsIndependent) {
  binder_.add_measurement(0, 0.1, -50.0f, traj_);
  binder_.add_measurement(3, 0.2, -90.0f, traj_);
  binder_.bind_metre(0, GeoSample{}, traj_);
  EXPECT_TRUE(traj_.power(0).measured(0));
  EXPECT_TRUE(traj_.power(0).measured(3));
  EXPECT_FALSE(traj_.power(0).usable(1));
  EXPECT_FLOAT_EQ(traj_.power(0).at(3), -90.0f);
}

}  // namespace
}  // namespace rups::core
