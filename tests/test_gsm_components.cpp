// Unit tests for the GSM substrate's internal pieces: path loss, tower
// layout, temporal fading and environment profiles (the GsmField facade is
// covered in test_gsm_field).

#include <gtest/gtest.h>

#include <cmath>

#include "gsm/env_profile.hpp"
#include "gsm/path_loss.hpp"
#include "gsm/temporal.hpp"
#include "gsm/towers.hpp"
#include "util/stats.hpp"

namespace rups::gsm {
namespace {

// --- PathLoss ---

TEST(PathLoss, FreeSpaceKnownValue) {
  // FSPL at 1 km, 900 MHz: 20log10(1) + 20log10(900) + 32.44 = 91.52 dB.
  EXPECT_NEAR(PathLoss::free_space_db(1000.0, 900.0), 91.52, 0.05);
}

TEST(PathLoss, MonotoneInDistance) {
  const PathLoss pl(3.2, 935.0);
  double prev = 0.0;
  for (double d = 100.0; d <= 5000.0; d *= 1.5) {
    const double loss = pl.loss_db(d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLoss, ClampsBelowReferenceDistance) {
  const PathLoss pl(3.2, 935.0, 100.0);
  EXPECT_DOUBLE_EQ(pl.loss_db(1.0), pl.loss_db(100.0));
  EXPECT_DOUBLE_EQ(pl.loss_db(50.0), pl.loss_db(100.0));
}

TEST(PathLoss, ExponentControlsSlope) {
  const PathLoss urban(3.6, 935.0);
  const PathLoss open(2.9, 935.0);
  // Same reference loss, steeper decay for the higher exponent.
  EXPECT_NEAR(urban.loss_db(100.0), open.loss_db(100.0), 1e-9);
  EXPECT_GT(urban.loss_db(2000.0), open.loss_db(2000.0));
  // Decade of distance = 10*n dB.
  EXPECT_NEAR(urban.loss_db(1000.0) - urban.loss_db(100.0), 36.0, 1e-9);
}

TEST(PathLoss, FrequencyRaisesReferenceLoss) {
  const PathLoss gsm(3.0, 935.0);
  const PathLoss fm(3.0, 98.0);
  EXPECT_GT(gsm.loss_db(500.0), fm.loss_db(500.0) + 15.0);  // ~19.6 dB
}

// --- TowerLayout ---

road::RoadSegment seg_of(road::SegmentId id, road::EnvironmentType env,
                         double len = 1000.0) {
  road::RoadSegment s;
  s.id = id;
  s.env = env;
  s.length_m = len;
  return s;
}

TEST(TowerLayout, DeterministicPerSegment) {
  const auto plan = ChannelPlan::evaluation_subset(1, 40);
  const auto seg = seg_of(5, road::EnvironmentType::kFourLaneUrban);
  const auto& prof = env_profile(seg.env);
  const auto a = TowerLayout::for_segment(7, seg, plan, prof);
  const auto b = TowerLayout::for_segment(7, seg, plan, prof);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].position.x, b[i].position.x);
    EXPECT_EQ(a[i].channel_indices, b[i].channel_indices);
  }
}

TEST(TowerLayout, DifferentSegmentsDifferentTowers) {
  const auto plan = ChannelPlan::evaluation_subset(1, 40);
  const auto& prof = env_profile(road::EnvironmentType::kFourLaneUrban);
  const auto a = TowerLayout::for_segment(
      7, seg_of(5, road::EnvironmentType::kFourLaneUrban), plan, prof);
  const auto b = TowerLayout::for_segment(
      7, seg_of(6, road::EnvironmentType::kFourLaneUrban), plan, prof);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a[0].position.x, b[0].position.x);
}

TEST(TowerLayout, CoversSegmentWithShoulders) {
  const auto plan = ChannelPlan::evaluation_subset(1, 40);
  const auto seg = seg_of(9, road::EnvironmentType::kFourLaneUrban, 2000.0);
  const auto& prof = env_profile(seg.env);
  const auto towers = TowerLayout::for_segment(7, seg, plan, prof);
  // Spacing ~500 m over 2000 m + shoulders: expect ~5-8 towers.
  EXPECT_GE(towers.size(), 4u);
  EXPECT_LE(towers.size(), 10u);
  double min_along = 1e18, max_along = -1e18;
  for (const auto& t : towers) {
    min_along = std::min(min_along, t.position.x);
    max_along = std::max(max_along, t.position.x);
  }
  EXPECT_LT(min_along, 100.0);     // shoulder before the start
  EXPECT_GT(max_along, 1700.0);    // coverage near the end (jittered)
}

TEST(TowerLayout, SparserInSuburb) {
  const auto plan = ChannelPlan::evaluation_subset(1, 40);
  const auto urban = TowerLayout::for_segment(
      7, seg_of(1, road::EnvironmentType::kFourLaneUrban, 3000.0), plan,
      env_profile(road::EnvironmentType::kFourLaneUrban));
  const auto suburb = TowerLayout::for_segment(
      7, seg_of(2, road::EnvironmentType::kTwoLaneSuburb, 3000.0), plan,
      env_profile(road::EnvironmentType::kTwoLaneSuburb));
  EXPECT_GT(urban.size(), suburb.size());
}

TEST(TowerLayout, ChannelIndicesValidAndUnique) {
  const auto plan = ChannelPlan::evaluation_subset(1, 40);
  const auto seg = seg_of(3, road::EnvironmentType::kDowntown);
  const auto towers =
      TowerLayout::for_segment(7, seg, plan, env_profile(seg.env));
  for (const auto& t : towers) {
    EXPECT_FALSE(t.channel_indices.empty());
    for (std::size_t i = 1; i < t.channel_indices.size(); ++i) {
      EXPECT_LT(t.channel_indices[i - 1], t.channel_indices[i]);
    }
    for (std::size_t c : t.channel_indices) EXPECT_LT(c, plan.size());
    EXPECT_GE(t.tx_power_dbm, 40.0);
    EXPECT_LE(t.tx_power_dbm, 46.0);
  }
}

// --- TemporalFading ---

TEST(TemporalFading, DeterministicAndZeroMeanish) {
  const auto& prof = env_profile(road::EnvironmentType::kFourLaneUrban);
  const TemporalFading fading(3, prof);
  EXPECT_DOUBLE_EQ(fading.offset_db(5, 100.0), fading.offset_db(5, 100.0));
  util::RunningStats s;
  for (int i = 0; i < 3000; ++i) {
    s.add(fading.offset_db(static_cast<std::size_t>(i % 60),
                           100.0 * (i / 60)));
  }
  EXPECT_NEAR(s.mean(), 0.0, 1.0);
}

TEST(TemporalFading, VolatileCoinMatchesFraction) {
  const auto& prof = env_profile(road::EnvironmentType::kFourLaneUrban);
  const TemporalFading fading(4, prof);
  int volatile_count = 0;
  constexpr int kChannels = 2000;
  for (int c = 0; c < kChannels; ++c) {
    if (fading.is_volatile(static_cast<std::size_t>(c))) ++volatile_count;
  }
  EXPECT_NEAR(static_cast<double>(volatile_count) / kChannels,
              prof.volatile_fraction, 0.03);
}

TEST(TemporalFading, VolatileChannelsSwingHarder) {
  const auto& prof = env_profile(road::EnvironmentType::kDowntown);
  const TemporalFading fading(5, prof);
  util::RunningStats stable, volat;
  for (std::size_t c = 0; c < 300; ++c) {
    util::RunningStats per_channel;
    for (int t = 0; t < 40; ++t) {
      per_channel.add(fading.offset_db(c, 120.0 * t));
    }
    (fading.is_volatile(c) ? volat : stable).add(per_channel.stddev());
  }
  ASSERT_GT(stable.count(), 50u);
  ASSERT_GT(volat.count(), 20u);
  EXPECT_GT(volat.mean(), 2.0 * stable.mean());
}

TEST(TemporalFading, SlowOverShortIntervals) {
  const auto& prof = env_profile(road::EnvironmentType::kFourLaneUrban);
  const TemporalFading fading(6, prof);
  util::RunningStats delta;
  for (std::size_t c = 0; c < 100; ++c) {
    delta.add(std::abs(fading.offset_db(c, 500.0) -
                       fading.offset_db(c, 505.0)));
  }
  EXPECT_LT(delta.mean(), 1.0);  // 5 s barely moves a slow fade
}

// --- Environment profiles ---

TEST(EnvProfile, AllEnvironmentsHaveSanePhysics) {
  for (road::EnvironmentType env : road::kAllEnvironments) {
    const auto& p = env_profile(env);
    EXPECT_GT(p.tower_spacing_m, 100.0);
    EXPECT_GE(p.path_loss_exponent, 2.0);
    EXPECT_LE(p.path_loss_exponent, 4.5);
    EXPECT_GT(p.shadow_long_corr_m, p.shadow_short_corr_m);
    EXPECT_GE(p.volatile_fraction, 0.0);
    EXPECT_LE(p.volatile_fraction, 0.5);
    EXPECT_GE(p.shadow_ephemeral_fraction, 0.0);
    EXPECT_LE(p.shadow_ephemeral_fraction, 1.0);
    EXPECT_GE(p.bulk_attenuation_db, 0.0);
  }
}

TEST(EnvProfile, UnderElevatedIsTheHarshest) {
  const auto& ue = env_profile(road::EnvironmentType::kUnderElevated);
  for (road::EnvironmentType env : road::kAllEnvironments) {
    if (env == road::EnvironmentType::kUnderElevated) continue;
    const auto& p = env_profile(env);
    EXPECT_GE(ue.bulk_attenuation_db, p.bulk_attenuation_db);
    EXPECT_GE(ue.shadow_ephemeral_fraction, p.shadow_ephemeral_fraction);
  }
}

}  // namespace
}  // namespace rups::gsm
