// System test: NeighbourTracker against the full simulator — the Sec. V-B
// continuous-tracking strategy on realistic sensor data, including the
// bandwidth claim (tail updates are orders of magnitude cheaper than full
// exchanges).

#include <gtest/gtest.h>

#include "core/tracker.hpp"
#include "sim/convoy_sim.hpp"
#include "util/stats.hpp"
#include "v2v/exchange.hpp"

namespace rups {
namespace {

class TrackingIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::Scenario scenario = sim::Scenario::two_car(
        42, road::EnvironmentType::kFourLaneUrban, 40.0);
    scenario.route_length_m = 8'000.0;
    sim_ = std::make_unique<sim::ConvoySimulation>(scenario);
    sim_->run_until(400.0);
  }

  std::unique_ptr<sim::ConvoySimulation> sim_;
};

TEST_F(TrackingIntegration, LockFollowAndStayAccurate) {
  v2v::DsrcLink link(1);
  v2v::ExchangeSession session(&link);
  core::NeighbourTracker::Config cfg;
  cfg.syn = sim_->rig(1).engine().config().syn;
  core::NeighbourTracker tracker(cfg);

  const auto full =
      session.exchange_full(sim_->rig(0).engine().context());
  ASSERT_TRUE(tracker.initialize(sim_->rig(1).engine().context(),
                                 full.trajectory));
  const std::size_t full_bytes = full.stats.payload_bytes;

  util::RunningStats err;
  std::size_t tail_bytes = 0;
  int refreshes = 0;
  for (double t = 400.5; t <= 460.0; t += 0.5) {
    sim_->run_until(t);
    const auto* cached = tracker.neighbour();
    ASSERT_NE(cached, nullptr);
    const auto tail = session.exchange_tail(
        sim_->rig(0).engine().context(),
        cached->first_metre() + cached->size());
    tail_bytes += tail.stats.payload_bytes;
    tracker.ingest_tail(tail.trajectory);
    if (!tracker.maintain(sim_->rig(1).engine().context()) ||
        tracker.needs_full_refresh()) {
      const auto again =
          session.exchange_full(sim_->rig(0).engine().context());
      tracker.initialize(sim_->rig(1).engine().context(), again.trajectory);
      ++refreshes;
      continue;
    }
    const auto est = tracker.estimate(sim_->rig(1).engine().context());
    ASSERT_TRUE(est.has_value());
    const double truth = sim_->rig(1).state().position_m -
                         sim_->rig(0).state().position_m;
    err.add(std::abs(est->distance_m - truth));
  }

  ASSERT_GT(err.count(), 80u);
  EXPECT_LT(err.mean(), 5.0);
  EXPECT_LT(err.max(), 20.0);
  // The ambiguity guard prefers a full refresh over a silent wrong jump;
  // a handful per minute is the intended trade.
  EXPECT_LE(refreshes, 10);
  // 120 tail updates must cost far less than one full exchange each.
  EXPECT_LT(tail_bytes, full_bytes * 3);
}

TEST_F(TrackingIntegration, EstimateTracksGapChanges) {
  core::NeighbourTracker::Config cfg;
  cfg.syn = sim_->rig(1).engine().config().syn;
  core::NeighbourTracker tracker(cfg);
  ASSERT_TRUE(tracker.initialize(sim_->rig(1).engine().context(),
                                 sim_->rig(0).engine().context()));

  // Track the ground-truth gap over a minute using fresh contexts (no
  // codec in the loop — isolates the tracker's math).
  for (double t = 405.0; t <= 460.0; t += 5.0) {
    sim_->run_until(t);
    const auto* cached = tracker.neighbour();
    // Splice directly from the live front context.
    const auto& front = sim_->rig(0).engine().context();
    core::ContextTrajectory tail(front.channels(), front.size());
    const std::uint64_t since = cached->first_metre() + cached->size();
    for (std::size_t i = 0; i < front.size(); ++i) {
      const std::uint64_t metre = front.first_metre() + i;
      if (metre < since) continue;
      tail.append(front.geo(i), front.power(i));
    }
    tail.rebase(since);
    tracker.ingest_tail(tail);
    tracker.maintain(sim_->rig(1).engine().context());
    const auto est = tracker.estimate(sim_->rig(1).engine().context());
    ASSERT_TRUE(est.has_value()) << "t=" << t;
    const double truth = sim_->rig(1).state().position_m -
                         sim_->rig(0).state().position_m;
    EXPECT_NEAR(est->distance_m, truth, 6.0) << "t=" << t;
  }
}

}  // namespace
}  // namespace rups
