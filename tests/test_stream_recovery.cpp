// Gap bookkeeping and recovery of the streaming V2V path: the
// v2v::V2vReceiver watermark invariants under degraded outcomes, and the
// stream::BeaconSession diff protocol under scripted fault profiles
// (blackout -> recovery, gap bound -> full re-sync fallback).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/types.hpp"
#include "stream/beacon.hpp"
#include "v2v/channel.hpp"
#include "v2v/exchange.hpp"
#include "v2v/link.hpp"
#include "v2v/receiver.hpp"

namespace rups {
namespace {

constexpr std::size_t kChannels = 12;
constexpr std::size_t kCapacity = 200;

[[nodiscard]] float value_at(std::uint64_t metre, std::size_t channel) {
  return -90.0f + 0.5f * static_cast<float>(channel) +
         3.0f * std::sin(0.21f * static_cast<float>(metre));
}

/// Grow `t` by `n` metres continuing from its current end.
void grow(core::ContextTrajectory& t, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t metre = t.first_metre() + t.size();
    core::PowerVector power(kChannels);
    for (std::size_t c = 0; c < kChannels; ++c) {
      power.set(c, value_at(metre, c), core::ChannelState::kMeasured);
    }
    t.append(core::GeoSample{0.0, static_cast<double>(metre)},
             std::move(power));
  }
}

/// Trajectory covering [first, first + n).
[[nodiscard]] core::ContextTrajectory make_region(std::uint64_t first,
                                                  std::size_t n) {
  core::ContextTrajectory t(kChannels, kCapacity);
  t.rebase(first);
  grow(t, n);
  return t;
}

[[nodiscard]] v2v::ExchangeResult degraded(core::ContextTrajectory region) {
  v2v::ExchangeResult result{std::move(region),
                             {},
                             v2v::ExchangeOutcome::kDegraded};
  result.detail = "v2v.degraded.test";
  return result;
}

[[nodiscard]] v2v::ExchangeResult delivered(core::ContextTrajectory region) {
  return v2v::ExchangeResult{std::move(region), {},
                             v2v::ExchangeOutcome::kDelivered};
}

/// Receiver holding a clean cache of [0, 100).
[[nodiscard]] v2v::V2vReceiver synced_receiver() {
  v2v::V2vReceiver recv(kChannels, kCapacity);
  EXPECT_TRUE(recv.ingest(delivered(make_region(0, 100)), true));
  EXPECT_EQ(recv.synced_metre, 100u);
  EXPECT_TRUE(recv.have_full);
  return recv;
}

TEST(V2vReceiverGap, BackToBackDegradedTailsKeepOriginalWatermark) {
  v2v::V2vReceiver recv = synced_receiver();

  // Two consecutive degraded tails whose salvaged region starts past the
  // cache end (the requested prefix was lost). The cache cannot splice a
  // gap, so each must keep BOTH the cache and the watermark — a second
  // degraded outcome must re-request from the same metre as the first.
  EXPECT_FALSE(recv.ingest(degraded(make_region(120, 30)), false));
  EXPECT_EQ(recv.synced_metre, 100u);
  EXPECT_FALSE(recv.have_full);

  EXPECT_FALSE(recv.ingest(degraded(make_region(130, 30)), false));
  EXPECT_EQ(recv.synced_metre, 100u);
  EXPECT_EQ(recv.received.size(), 100u);
}

TEST(V2vReceiverGap, DegradedFullSalvageOlderThanCacheKeepsCache) {
  v2v::V2vReceiver recv = synced_receiver();

  // A full re-transfer degraded down to a salvaged region that ends BEFORE
  // our cache does ([20,60) vs [0,100)). The overlap splice keeps every
  // cached entry, so the watermark must NOT regress from 100 to 60 and the
  // cache stays authoritative for a tail re-request from 100.
  const double head_time = recv.received.geo(99).time_s;
  (void)recv.ingest(degraded(make_region(20, 40)), true);
  EXPECT_EQ(recv.synced_metre, 100u);
  EXPECT_EQ(recv.received.size(), 100u);
  EXPECT_EQ(recv.received.first_metre(), 0u);
  EXPECT_EQ(recv.received.geo(99).time_s, head_time);  // ours kept, not theirs
  EXPECT_TRUE(recv.have_full);

  // And again: the bookkeeping is idempotent, not one-shot.
  (void)recv.ingest(degraded(make_region(10, 50)), true);
  EXPECT_EQ(recv.synced_metre, 100u);
  EXPECT_EQ(recv.received.size(), 100u);
}

TEST(V2vReceiverGap, DegradedFullReachingPastCacheAdoptsRegion) {
  v2v::V2vReceiver recv = synced_receiver();

  // Salvaged full region that extends PAST the cache is authoritative for
  // the newest metres even though it does not connect: adopt it.
  EXPECT_TRUE(recv.ingest(degraded(make_region(120, 60)), true));
  EXPECT_EQ(recv.synced_metre, 180u);
  EXPECT_EQ(recv.received.first_metre(), 120u);
  EXPECT_TRUE(recv.have_full);
}

TEST(V2vReceiverGap, FailedExchangesNeverMoveTheWatermark) {
  v2v::V2vReceiver recv = synced_receiver();
  const v2v::ExchangeResult failed{
      core::ContextTrajectory(kChannels, kCapacity),
      {},
      v2v::ExchangeOutcome::kFailed};
  EXPECT_FALSE(recv.ingest(failed, false));
  EXPECT_EQ(recv.synced_metre, 100u);
  EXPECT_TRUE(recv.have_full);  // a failed TAIL does not force a re-transfer
  EXPECT_FALSE(recv.ingest(failed, true));
  EXPECT_FALSE(recv.have_full);  // a failed FULL does
  EXPECT_EQ(recv.synced_metre, 100u);
}

TEST(BeaconSession, CleanChannelDiffsAndHeartbeats) {
  v2v::DsrcLink link(0x57AB1EULL);
  v2v::FaultyChannel channel(0xFA151ULL, v2v::FaultConfig::clean());
  stream::BeaconSession session(kChannels, kCapacity, &link, &channel);

  core::ContextTrajectory sender(kChannels, kCapacity);
  grow(sender, 40);
  EXPECT_EQ(session.beacon(sender), stream::BeaconOutcome::kResync);
  EXPECT_EQ(session.watermark(), 40u);

  grow(sender, 5);
  EXPECT_EQ(session.beacon(sender), stream::BeaconOutcome::kSynced);
  EXPECT_EQ(session.watermark(), 45u);

  // No growth: watermark-only heartbeat, no payload moved.
  const std::size_t bytes_before = session.total_bytes();
  EXPECT_EQ(session.beacon(sender), stream::BeaconOutcome::kNoNews);
  EXPECT_EQ(session.total_bytes(),
            bytes_before + stream::BeaconSession::kHeartbeatBytes);

  const stream::BeaconStats& stats = session.stats();
  EXPECT_EQ(stats.beacons, 3u);
  EXPECT_EQ(stats.resyncs, 1u);
  EXPECT_EQ(stats.diffs, 1u);
  EXPECT_EQ(stats.no_news, 1u);
  EXPECT_EQ(stats.rerequests, 0u);
  EXPECT_EQ(stats.metres_gained, 45u);

  // Codec quantization may perturb values, but the metre RANGE of the
  // receiver-side view must mirror the sender exactly.
  EXPECT_EQ(session.view().first_metre(), sender.first_metre());
  EXPECT_EQ(session.view().size(), sender.size());
}

TEST(BeaconSession, BlackoutHoldsWatermarkThenRecovers) {
  v2v::DsrcLink link(0x57AB1EULL);
  v2v::FaultyChannel channel(0xFA151ULL, v2v::FaultConfig::clean());
  stream::BeaconConfig cfg;
  cfg.max_gap_rerequests = 5;
  stream::BeaconSession session(kChannels, kCapacity, &link, &channel, cfg);

  core::ContextTrajectory sender(kChannels, kCapacity);
  grow(sender, 30);
  ASSERT_EQ(session.beacon(sender), stream::BeaconOutcome::kResync);
  ASSERT_EQ(session.watermark(), 30u);

  // Total blackout: every beacon fails, the watermark must hold at 30.
  channel.set_config(v2v::FaultConfig::iid(1.0));
  grow(sender, 8);
  EXPECT_EQ(session.beacon(sender), stream::BeaconOutcome::kStale);
  EXPECT_EQ(session.watermark(), 30u);
  grow(sender, 8);
  EXPECT_EQ(session.beacon(sender), stream::BeaconOutcome::kStale);
  EXPECT_EQ(session.watermark(), 30u);
  EXPECT_EQ(session.stats().rerequests, 2u);

  // Channel heals: ONE beacon catches the whole 16-metre backlog because
  // the re-request still starts from the held watermark.
  channel.set_config(v2v::FaultConfig::clean());
  EXPECT_EQ(session.beacon(sender), stream::BeaconOutcome::kRecovered);
  EXPECT_EQ(session.watermark(), 46u);
  EXPECT_EQ(session.stats().metres_gained, 46u);
  EXPECT_EQ(session.stats().resyncs, 1u);  // the gap healed WITHOUT a resync
}

TEST(BeaconSession, GapBoundForcesFullResync) {
  v2v::DsrcLink link(0x57AB1EULL);
  v2v::FaultyChannel channel(0xFA151ULL, v2v::FaultConfig::clean());
  stream::BeaconConfig cfg;
  cfg.max_gap_rerequests = 2;
  stream::BeaconSession session(kChannels, kCapacity, &link, &channel, cfg);

  core::ContextTrajectory sender(kChannels, kCapacity);
  grow(sender, 30);
  ASSERT_EQ(session.beacon(sender), stream::BeaconOutcome::kResync);

  channel.set_config(v2v::FaultConfig::iid(1.0));
  grow(sender, 4);
  EXPECT_EQ(session.beacon(sender), stream::BeaconOutcome::kStale);
  EXPECT_EQ(session.beacon(sender), stream::BeaconOutcome::kStale);

  // Two consecutive short rounds exhausted the re-request budget; the next
  // beacon abandons diffing and re-ships the full context.
  channel.set_config(v2v::FaultConfig::clean());
  EXPECT_EQ(session.beacon(sender), stream::BeaconOutcome::kResync);
  EXPECT_EQ(session.watermark(), 34u);
  EXPECT_EQ(session.stats().resyncs, 2u);
}

TEST(BeaconSession, WatermarkIsMonotoneUnderUrbanFaults) {
  v2v::DsrcLink link(0xD5ECULL);
  v2v::FaultyChannel channel(0xFADEDULL, v2v::FaultConfig::urban());
  stream::BeaconSession session(kChannels, kCapacity, &link, &channel);

  core::ContextTrajectory sender(kChannels, kCapacity);
  std::uint64_t watermark = 0;
  for (int round = 0; round < 120; ++round) {
    grow(sender, 3);
    (void)session.beacon(sender);
    EXPECT_GE(session.watermark(), watermark)
        << "watermark regressed in round " << round;
    watermark = session.watermark();
  }
  // The diff protocol keeps up with a 5%-loss urban channel: by the end the
  // view is within one beacon of the sender.
  EXPECT_GE(watermark, sender.first_metre() + sender.size() - 3);
  EXPECT_GT(session.stats().diffs, 0u);
}

}  // namespace
}  // namespace rups
