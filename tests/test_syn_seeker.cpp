#include "core/syn_seeker.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/resolver.hpp"
#include "util/hash_noise.hpp"
#include "util/thread_pool.hpp"

namespace rups::core {
namespace {

/// Synthetic "road field": deterministic RSSI per (road metre, channel)
/// with structure on both axes.
float road_rssi(std::uint64_t road_seed, std::int64_t metre, std::size_t ch) {
  const util::HashNoise chan_noise(road_seed ^ 0xABCDULL);
  const util::LatticeField1D spatial(
      util::hash_combine(road_seed, static_cast<std::uint64_t>(ch)), 8.0, 2);
  const double base =
      -95.0 + 40.0 * chan_noise.uniform(static_cast<std::int64_t>(ch));
  return static_cast<float>(base +
                            6.0 * spatial.value(static_cast<double>(metre)));
}

/// Vehicle trajectory covering road metres [road_start, road_start+len),
/// with measurement noise `sigma`.
ContextTrajectory drive(std::uint64_t road_seed, std::int64_t road_start,
                        std::size_t len, std::size_t channels, double sigma,
                        std::uint64_t noise_seed) {
  ContextTrajectory traj(channels, len);
  util::Rng rng(noise_seed);
  for (std::size_t i = 0; i < len; ++i) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      pv.set(c, road_rssi(road_seed, road_start + static_cast<std::int64_t>(i),
                          c) +
                    static_cast<float>(rng.gaussian(0.0, sigma)));
    }
    traj.append(GeoSample{0.0, static_cast<double>(i)}, std::move(pv));
  }
  return traj;
}

SynConfig small_config() {
  SynConfig cfg;
  cfg.window_m = 40;
  cfg.top_channels = 20;
  cfg.coherency_threshold = 1.2;
  return cfg;
}

TEST(SynSeeker, FindsExactOverlapOffset) {
  const auto a = drive(1, 0, 200, 30, 0.5, 10);
  const auto b = drive(1, 50, 200, 30, 0.5, 11);
  const SynSeeker seeker(small_config());
  const auto syn = seeker.find_one(a, b);
  ASSERT_TRUE(syn.has_value());
  // Matched windows must reference the same road metres:
  // road(a)=index_a, road(b)=50+index_b  =>  index_a - index_b = 50.
  EXPECT_NEAR(static_cast<double>(syn->index_a) -
                  static_cast<double>(syn->index_b),
              50.0, 2.0);
  EXPECT_GE(syn->correlation, 1.2);
}

TEST(SynSeeker, ResolvedDistanceMatchesGroundTruth) {
  const auto a = drive(2, 0, 200, 30, 0.5, 10);
  const auto b = drive(2, 80, 200, 30, 0.5, 11);  // b is 80 m ahead
  const SynSeeker seeker(small_config());
  const auto syn = seeker.find_one(a, b);
  ASSERT_TRUE(syn.has_value());
  EXPECT_NEAR(resolve_distance(a, b, *syn), -80.0, 2.5);
  EXPECT_NEAR(resolve_distance(b, a, SynPoint{syn->index_b, syn->index_a,
                                              syn->window_m,
                                              syn->correlation}),
              80.0, 2.5);
}

TEST(SynSeeker, UnrelatedRoadsNoSyn) {
  const auto a = drive(3, 0, 200, 30, 0.5, 10);
  const auto b = drive(999, 0, 200, 30, 0.5, 11);
  const SynSeeker seeker(small_config());
  EXPECT_FALSE(seeker.find_one(a, b).has_value());
  EXPECT_TRUE(seeker.find(a, b).empty());
}

TEST(SynSeeker, EmptyTrajectoriesNoSyn) {
  ContextTrajectory empty(30, 100);
  const auto a = drive(4, 0, 150, 30, 0.5, 10);
  const SynSeeker seeker(small_config());
  EXPECT_FALSE(seeker.find_one(a, empty).has_value());
  EXPECT_FALSE(seeker.find_one(empty, a).has_value());
}

TEST(SynSeeker, NoisyMeasurementsStillMatch) {
  const auto a = drive(5, 0, 200, 30, 2.5, 10);
  const auto b = drive(5, 30, 200, 30, 2.5, 11);
  const SynSeeker seeker(small_config());
  const auto syn = seeker.find_one(a, b);
  ASSERT_TRUE(syn.has_value());
  EXPECT_NEAR(static_cast<double>(syn->index_a) -
                  static_cast<double>(syn->index_b),
              30.0, 3.0);
}

TEST(SynSeeker, AdaptiveWindowHandlesShortContext) {
  // Vehicle b just turned onto the road: only 25 m of context (< window 40).
  const auto a = drive(6, 0, 200, 30, 0.5, 10);
  const auto b = drive(6, 100, 25, 30, 0.5, 11);
  SynConfig cfg = small_config();
  cfg.adaptive_window = true;
  const SynSeeker seeker(cfg);
  const auto syn = seeker.find_one(a, b);
  ASSERT_TRUE(syn.has_value());
  EXPECT_EQ(syn->window_m, 25u);
  EXPECT_NEAR(static_cast<double>(syn->index_a) -
                  static_cast<double>(syn->index_b),
              100.0, 3.0);
}

TEST(SynSeeker, AdaptiveWindowDisabledRefusesShortContext) {
  const auto a = drive(6, 0, 200, 30, 0.5, 10);
  const auto b = drive(6, 100, 25, 30, 0.5, 11);
  SynConfig cfg = small_config();
  cfg.adaptive_window = false;
  const SynSeeker seeker(cfg);
  EXPECT_FALSE(seeker.find_one(a, b).has_value());
}

TEST(SynSeeker, BelowMinWindowRefused) {
  const auto a = drive(7, 0, 200, 30, 0.5, 10);
  const auto b = drive(7, 100, 6, 30, 0.5, 11);  // < min_window_m (10)
  const SynSeeker seeker(small_config());
  EXPECT_FALSE(seeker.find_one(a, b).has_value());
}

TEST(SynSeeker, MultiSynReturnsSeveralPoints) {
  const auto a = drive(8, 0, 300, 30, 0.8, 10);
  const auto b = drive(8, 40, 300, 30, 0.8, 11);
  SynConfig cfg = small_config();
  cfg.syn_points = 5;
  cfg.syn_segment_spacing_m = 25;
  const SynSeeker seeker(cfg);
  const auto syns = seeker.find(a, b);
  EXPECT_GE(syns.size(), 3u);
  // Sorted by correlation, best first.
  for (std::size_t i = 1; i < syns.size(); ++i) {
    EXPECT_GE(syns[i - 1].correlation, syns[i].correlation);
  }
  // Every SYN point implies roughly the same relative distance.
  for (const auto& s : syns) {
    EXPECT_NEAR(resolve_distance(a, b, s), -40.0, 3.0);
  }
}

TEST(SynSeeker, ParallelMatchesSequential) {
  const auto a = drive(9, 0, 400, 30, 1.0, 10);
  const auto b = drive(9, 120, 400, 30, 1.0, 11);
  const SynSeeker sequential(small_config(), nullptr);
  util::ThreadPool pool(4);
  const SynSeeker parallel(small_config(), &pool);
  const auto s1 = sequential.find_one(a, b);
  const auto s2 = parallel.find_one(a, b);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s1->index_a, s2->index_a);
  EXPECT_EQ(s1->index_b, s2->index_b);
  EXPECT_DOUBLE_EQ(s1->correlation, s2->correlation);
}

TEST(SynSeeker, StrideSpeedsSearchStillFinds) {
  const auto a = drive(10, 0, 300, 30, 0.5, 10);
  const auto b = drive(10, 60, 300, 30, 0.5, 11);
  SynConfig cfg = small_config();
  cfg.stride_m = 4;
  const SynSeeker seeker(cfg);
  const auto syn = seeker.find_one(a, b);
  ASSERT_TRUE(syn.has_value());
  EXPECT_NEAR(static_cast<double>(syn->index_a) -
                  static_cast<double>(syn->index_b),
              60.0, 5.0);
}

TEST(SynSeeker, CoarseToFineMatchesExhaustive) {
  const auto a = drive(12, 0, 400, 30, 1.0, 10);
  const auto b = drive(12, 90, 400, 30, 1.0, 11);
  SynConfig exhaustive = small_config();
  SynConfig coarse = small_config();
  coarse.coarse_stride_m = 5;
  const auto s1 = SynSeeker(exhaustive).find_one(a, b);
  const auto s2 = SynSeeker(coarse).find_one(a, b);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  // The correlation surface peaks sharply at the true offset; coarse-to-
  // fine must land on the same position.
  EXPECT_EQ(s1->index_a, s2->index_a);
  EXPECT_EQ(s1->index_b, s2->index_b);
  EXPECT_DOUBLE_EQ(s1->correlation, s2->correlation);
}

/// Trajectory that drives road `road1` for `len1` metres, turns 90
/// degrees, then drives road `road2` for `len2` metres.
ContextTrajectory drive_with_turn(std::uint64_t road1, std::size_t len1,
                                  std::uint64_t road2, std::size_t len2,
                                  std::size_t channels,
                                  std::uint64_t noise_seed) {
  ContextTrajectory traj(channels, len1 + len2);
  util::Rng rng(noise_seed);
  for (std::size_t i = 0; i < len1 + len2; ++i) {
    const bool second = i >= len1;
    const std::uint64_t road = second ? road2 : road1;
    const std::int64_t metre =
        second ? static_cast<std::int64_t>(i - len1)
               : static_cast<std::int64_t>(i);
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      pv.set(c, road_rssi(road, metre, c) +
                    static_cast<float>(rng.gaussian(0.0, 0.5)));
    }
    traj.append(GeoSample{second ? 1.5707963 : 0.0, static_cast<double>(i)},
                std::move(pv));
  }
  return traj;
}

TEST(SynSeeker, RespectTurnsUsesOnlyPostTurnTail) {
  // Vehicle A: 150 m on road 100, turn, 25 m on road 200. Vehicle B has
  // been on road 200 all along. A fixed 40 m window spans the turn and
  // mixes two roads' fingerprints; respecting turns shrinks the window to
  // the 25 m post-turn tail which matches cleanly.
  const auto a = drive_with_turn(100, 150, 200, 25, 30, 10);
  const auto b = drive(200, 0, 200, 30, 0.5, 11);

  SynConfig cfg = small_config();
  cfg.respect_turns = true;
  cfg.adaptive_window = true;
  const auto syn = SynSeeker(cfg).find_one(a, b);
  ASSERT_TRUE(syn.has_value());
  EXPECT_LE(syn->window_m, 25u);
  // A's post-turn tail covers road-200 metres [0, 25); the matched window
  // on B must sit at the same road metres.
  EXPECT_LE(syn->index_b, 3u);
}

TEST(SynSeeker, RespectTurnsRefusesWhenTailTooShort) {
  const auto a = drive_with_turn(100, 170, 200, 5, 30, 10);  // 5 m tail
  const auto b = drive(200, 0, 200, 30, 0.5, 11);
  SynConfig cfg = small_config();
  cfg.respect_turns = true;
  EXPECT_FALSE(SynSeeker(cfg).find_one(a, b).has_value());
}

class SynOffsetSweep : public ::testing::TestWithParam<int> {};

TEST_P(SynOffsetSweep, RecoversArbitraryOffsets) {
  const int offset = GetParam();
  const auto a = drive(11, 0, 250, 30, 0.8, 10);
  const auto b = drive(11, offset, 250, 30, 0.8, 11);
  const SynSeeker seeker(small_config());
  const auto syn = seeker.find_one(a, b);
  ASSERT_TRUE(syn.has_value()) << "offset " << offset;
  EXPECT_NEAR(resolve_distance(a, b, *syn), -static_cast<double>(offset), 3.0)
      << "offset " << offset;
}

INSTANTIATE_TEST_SUITE_P(Offsets, SynOffsetSweep,
                         ::testing::Values(0, 5, 15, 60, 150));

}  // namespace
}  // namespace rups::core
