#include "sim/convoy_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace rups::sim {
namespace {

Scenario quick_scenario(std::uint64_t seed,
                        road::EnvironmentType env =
                            road::EnvironmentType::kFourLaneUrban) {
  Scenario s = Scenario::two_car(seed, env, /*gap_m=*/40.0);
  s.route_length_m = 6'000.0;
  return s;
}

TEST(ConvoySim, RejectsEmptyScenario) {
  Scenario s;
  EXPECT_THROW(ConvoySimulation{s}, std::invalid_argument);
}

TEST(ConvoySim, VehiclesMakeProgress) {
  ConvoySimulation sim(quick_scenario(1));
  sim.run_until(120.0);
  EXPECT_GT(sim.rig(0).state().position_m, 300.0);
  EXPECT_GT(sim.rig(1).state().position_m, 250.0);
  // Front starts 40 m ahead and keeps the lead approximately.
  EXPECT_GT(sim.rig(0).state().position_m, sim.rig(1).state().position_m);
}

TEST(ConvoySim, EnginesCalibrateAndBuildContext) {
  ConvoySimulation sim(quick_scenario(2));
  sim.run_until(300.0);
  for (std::size_t v = 0; v < 2; ++v) {
    EXPECT_TRUE(sim.rig(v).engine().calibrated()) << "vehicle " << v;
    EXPECT_GT(sim.rig(v).engine().context().size(), 200u) << "vehicle " << v;
    // Scanner coverage: a useful share of slots measured.
    EXPECT_GT(sim.rig(v).engine().context().measured_fraction(), 0.03)
        << "vehicle " << v;
  }
}

TEST(ConvoySim, OdometerScaleTracksTruth) {
  // The odometer starts at calibration time, so compare DISTANCE DELTAS
  // over a later interval rather than absolute values.
  ConvoySimulation sim(quick_scenario(3));
  sim.run_until(300.0);
  const double est0[2] = {sim.rig(0).engine().odometer_m(),
                          sim.rig(1).engine().odometer_m()};
  const double truth0[2] = {sim.rig(0).state().position_m,
                            sim.rig(1).state().position_m};
  sim.run_until(450.0);
  for (std::size_t v = 0; v < 2; ++v) {
    ASSERT_TRUE(sim.rig(v).engine().calibrated()) << "vehicle " << v;
    const double d_est = sim.rig(v).engine().odometer_m() - est0[v];
    const double d_truth = sim.rig(v).state().position_m - truth0[v];
    ASSERT_GT(d_truth, 300.0);
    EXPECT_NEAR(d_est, d_truth, 0.02 * d_truth + 5.0) << "vehicle " << v;
  }
}

TEST(ConvoySim, TruePositionOfMetreIsMonotone) {
  ConvoySimulation sim(quick_scenario(4));
  sim.run_until(180.0);
  const auto& rig = sim.rig(0);
  const auto metres = rig.engine().context().first_metre() +
                      rig.engine().context().size();
  ASSERT_GT(metres, 100u);
  double prev = -1.0;
  for (std::uint64_t m = 0; m < metres; ++m) {
    const double p = rig.true_position_of_metre(m);
    ASSERT_FALSE(std::isnan(p));
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_TRUE(std::isnan(rig.true_position_of_metre(metres + 10)));
}

TEST(ConvoySim, EndToEndQueryResolvesDistance) {
  ConvoySimulation sim(quick_scenario(5));
  sim.run_until(300.0);
  const auto q = sim.query(1, 0);
  ASSERT_TRUE(q.rups.has_value()) << "no SYN point found";
  EXPECT_LT(q.truth, 0.0);  // rear is behind
  const double err = *q.rups_error();
  EXPECT_LT(err, 15.0) << "RUPS error " << err << " truth " << q.truth
                       << " est " << q.rups->distance_m;
  EXPECT_FALSE(std::isnan(q.syn_error_m));
  EXPECT_LT(q.syn_error_m, 15.0);
}

TEST(ConvoySim, GpsBaselineAvailableAndCoarser) {
  ConvoySimulation sim(quick_scenario(6));
  sim.run_until(300.0);
  util::RunningStats rups_err, gps_err;
  for (int i = 0; i < 12; ++i) {
    sim.run_until(300.0 + 10.0 * i);
    const auto q = sim.query(1, 0);
    if (q.rups_error()) rups_err.add(*q.rups_error());
    if (q.gps_error()) gps_err.add(*q.gps_error());
  }
  ASSERT_GT(rups_err.count(), 6u);
  ASSERT_GT(gps_err.count(), 6u);
  // The headline claim, qualitatively: RUPS beats GPS on urban roads.
  EXPECT_LT(rups_err.mean(), gps_err.mean());
}

TEST(ConvoySim, DeterministicGivenSeed) {
  ConvoySimulation a(quick_scenario(7));
  ConvoySimulation b(quick_scenario(7));
  a.run_until(120.0);
  b.run_until(120.0);
  EXPECT_DOUBLE_EQ(a.rig(0).state().position_m, b.rig(0).state().position_m);
  EXPECT_DOUBLE_EQ(a.rig(1).engine().odometer_m(),
                   b.rig(1).engine().odometer_m());
  const auto qa = a.query(1, 0);
  const auto qb = b.query(1, 0);
  EXPECT_EQ(qa.rups.has_value(), qb.rups.has_value());
  if (qa.rups && qb.rups) {
    EXPECT_DOUBLE_EQ(qa.rups->distance_m, qb.rups->distance_m);
  }
}

TEST(ConvoySim, MoreRadiosImproveCoverage) {
  auto one = quick_scenario(8);
  one.vehicles[0].radios = 1;
  one.vehicles[1].radios = 1;
  auto four = quick_scenario(8);
  ConvoySimulation sim1(one), sim4(four);
  sim1.run_until(300.0);
  sim4.run_until(300.0);
  ASSERT_GT(sim1.rig(0).engine().context().size(), 50u);
  ASSERT_GT(sim4.rig(0).engine().context().size(), 50u);
  EXPECT_GT(sim4.rig(0).engine().context().measured_fraction(),
            sim1.rig(0).engine().context().measured_fraction() * 1.5);
}

TEST(ConvoySim, TraceRecordingCapturesStreams) {
  ConvoySimulation sim(quick_scenario(9));
  TraceRecorder recorder;
  sim.mutable_rig(0).set_trace_sink(&recorder);
  sim.run_until(30.0);
  const auto& trace = recorder.trace();
  // 30 s: ~6000 IMU samples, ~10 OBD samples, hundreds of dwells, ~30 fixes.
  EXPECT_NEAR(static_cast<double>(trace.imu.size()), 6000.0, 20.0);
  EXPECT_GE(trace.obd.size(), 9u);
  EXPECT_GT(trace.rssi.size(), 500u);
  EXPECT_GE(trace.gps.size(), 25u);
}

TEST(ConvoySim, TraceReplayReproducesContext) {
  ConvoySimulation sim(quick_scenario(10));
  TraceRecorder recorder;
  sim.mutable_rig(1).set_trace_sink(&recorder);
  sim.run_until(200.0);

  core::RupsConfig cfg = sim.scenario().rups;
  cfg.channels = sim.scenario().channels;
  core::RupsEngine replayed(cfg);
  replay_trace(recorder.trace(), replayed);

  const auto& live = sim.rig(1).engine().context();
  const auto& redo = replayed.context();
  ASSERT_EQ(redo.size(), live.size());
  EXPECT_NEAR(replayed.odometer_m(), sim.rig(1).engine().odometer_m(), 0.6);
  // Spot-check power vectors match.
  for (std::size_t i = 0; i < live.size(); i += 97) {
    for (std::size_t c = 0; c < live.channels(); c += 13) {
      EXPECT_EQ(redo.power(i).usable(c), live.power(i).usable(c));
      if (live.power(i).measured(c) && redo.power(i).measured(c)) {
        EXPECT_FLOAT_EQ(redo.power(i).at(c), live.power(i).at(c));
      }
    }
  }
}

TEST(ConvoySim, LaneChangesHappenWhenEnabled) {
  auto scenario = quick_scenario(11, road::EnvironmentType::kEightLaneUrban);
  scenario.vehicles[1].lane_change_mean_s = 20.0;
  ConvoySimulation sim(scenario);
  const int start_lane = sim.rig(1).current_lane();
  bool changed = false;
  for (int i = 0; i < 30 && !changed; ++i) {
    sim.run_until(10.0 * (i + 1));
    changed = sim.rig(1).current_lane() != start_lane;
  }
  EXPECT_TRUE(changed);
  EXPECT_GE(sim.rig(1).current_lane(), 1);
  EXPECT_LE(sim.rig(1).current_lane(), 8);
  // The front car (no lane changing) stays put.
  EXPECT_EQ(sim.rig(0).current_lane(), scenario.vehicles[0].lane);
}

TEST(ConvoySim, LaneChangingConvoyStillResolves) {
  auto scenario = quick_scenario(12, road::EnvironmentType::kEightLaneUrban);
  scenario.vehicles[0].lane_change_mean_s = 45.0;
  scenario.vehicles[1].lane_change_mean_s = 45.0;
  ConvoySimulation sim(scenario);
  sim.run_until(400.0);
  util::RunningStats err;
  for (int i = 0; i < 10; ++i) {
    sim.run_until(400.0 + 8.0 * i);
    const auto q = sim.query(1, 0);
    if (q.rups_error()) err.add(*q.rups_error());
  }
  ASSERT_GE(err.count(), 5u);
  EXPECT_LT(err.mean(), 20.0);
}

}  // namespace
}  // namespace rups::sim
