#include "vehicle/kinematics.hpp"

#include <gtest/gtest.h>

#include "road/route_builder.hpp"
#include "vehicle/speed_controller.hpp"
#include "vehicle/traffic.hpp"

namespace rups::vehicle {
namespace {

class KinematicsTest : public ::testing::Test {
 protected:
  road::Route route_ = road::make_uniform_route(
      1, road::EnvironmentType::kFourLaneUrban, 5'000.0);
  TrafficLightPlan lights_ = TrafficLightPlan::for_route(2, route_);
  TrafficLightPlan no_lights_;
};

TEST_F(KinematicsTest, AcceleratesFromRestTowardCruise) {
  SpeedController ctl(1, &route_, &no_lights_, TrafficDensity::kLight);
  Kinematics kin(&route_, &ctl, 1);
  for (int i = 0; i < 6000; ++i) kin.step(0.01);  // 60 s
  const double cruise = cruise_speed_mps(road::EnvironmentType::kFourLaneUrban,
                                         TrafficDensity::kLight);
  EXPECT_GT(kin.state().speed_mps, 0.6 * cruise);
  EXPECT_LT(kin.state().speed_mps, 1.4 * cruise);
  EXPECT_GT(kin.state().position_m, 100.0);
}

TEST_F(KinematicsTest, NeverReversesAndTimeAdvances) {
  SpeedController ctl(2, &route_, &lights_, TrafficDensity::kHeavy);
  Kinematics kin(&route_, &ctl, 1);
  double prev_pos = 0.0;
  for (int i = 0; i < 30000; ++i) {
    const auto& s = kin.step(0.01);
    EXPECT_GE(s.speed_mps, 0.0);
    EXPECT_GE(s.position_m, prev_pos);
    prev_pos = s.position_m;
  }
  EXPECT_NEAR(kin.state().time_s, 300.0, 1e-6);
}

TEST_F(KinematicsTest, StopsAtRedLights) {
  SpeedController ctl(3, &route_, &lights_, TrafficDensity::kLight);
  Kinematics kin(&route_, &ctl, 1);
  // Drive 10 minutes; with several lights on 5 km we must observe at least
  // one full stop (speed < 0.5 m/s while not at the route end).
  bool stopped_mid_route = false;
  for (int i = 0; i < 60000; ++i) {
    const auto& s = kin.step(0.01);
    if (s.time_s > 30.0 && s.speed_mps < 0.3 &&
        s.position_m < route_.total_length_m() - 100.0 &&
        s.position_m > 50.0) {
      stopped_mid_route = true;
    }
  }
  EXPECT_TRUE(stopped_mid_route);
}

TEST_F(KinematicsTest, AccelerationWithinLimits) {
  SpeedController::Limits limits;
  SpeedController ctl(4, &route_, &lights_, TrafficDensity::kModerate, limits);
  Kinematics kin(&route_, &ctl, 1);
  for (int i = 0; i < 30000; ++i) {
    const auto& s = kin.step(0.01);
    EXPECT_LE(s.accel_mps2, limits.max_accel_mps2 + 1e-9);
    EXPECT_GE(s.accel_mps2, -limits.max_decel_mps2 - 1e-9);
  }
}

TEST_F(KinematicsTest, ClampsAtRouteEnd) {
  const auto tiny =
      road::make_uniform_route(5, road::EnvironmentType::kTwoLaneSuburb, 200.0);
  SpeedController ctl(5, &tiny, &no_lights_, TrafficDensity::kLight);
  Kinematics kin(&tiny, &ctl, 1);
  for (int i = 0; i < 20000 && !kin.finished(); ++i) kin.step(0.01);
  EXPECT_TRUE(kin.finished());
  EXPECT_DOUBLE_EQ(kin.state().position_m, 200.0);
}

TEST_F(KinematicsTest, PoseTracksRouteGeometry) {
  SpeedController ctl(6, &route_, &no_lights_, TrafficDensity::kLight);
  Kinematics kin(&route_, &ctl, 2);
  for (int i = 0; i < 2000; ++i) kin.step(0.01);
  const auto expect = route_.pose_at(kin.state().position_m);
  EXPECT_DOUBLE_EQ(kin.state().pose.position.x, expect.position.x);
  EXPECT_DOUBLE_EQ(kin.state().heading_rad, expect.heading_rad);
  EXPECT_EQ(kin.state().lane, 2);
}

TEST_F(KinematicsTest, TwoVehiclesSameSeedIdentical) {
  SpeedController ctl(7, &route_, &lights_, TrafficDensity::kLight);
  Kinematics a(&route_, &ctl, 1), b(&route_, &ctl, 1);
  for (int i = 0; i < 5000; ++i) {
    a.step(0.01);
    b.step(0.01);
  }
  EXPECT_DOUBLE_EQ(a.state().position_m, b.state().position_m);
}

TEST_F(KinematicsTest, FollowerStartsBehindStaysBehind) {
  SpeedController ctl_a(8, &route_, &lights_, TrafficDensity::kLight);
  SpeedController ctl_b(8, &route_, &lights_, TrafficDensity::kLight);
  Kinematics front(&route_, &ctl_a, 1, 60.0);
  Kinematics rear(&route_, &ctl_b, 1, 0.0);
  for (int i = 0; i < 60000; ++i) {
    front.step(0.01);
    rear.step(0.01);
  }
  // Same controller seed, same lights: the follower cannot overtake by much
  // (they may bunch at a light, but order is preserved approximately).
  EXPECT_GT(front.state().position_m, rear.state().position_m - 1.0);
}

}  // namespace
}  // namespace rups::vehicle
