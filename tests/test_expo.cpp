// Prometheus text exposition and the live /metrics exporter: golden-file
// rendering (families, __overflow__ cells, histograms), bit-identical
// re-renders, the tolerant parse_prometheus reader, label-value escaping,
// and socket smoke tests including a scrape taken mid-campaign.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "obs/expo.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "sim/fleet_sim.hpp"

namespace rups::obs {
namespace {

// ---------------------------------------------------------------------------
// Rendering

MetricsSnapshot golden_snapshot() {
  MetricsSnapshot snap;
  snap.counters = {{"campaign.queries", 15},
                   {"fleet.query_outcome{outcome=\"__overflow__\"}", 1},
                   {"fleet.query_outcome{outcome=\"hit\"}", 12},
                   {"fleet.query_outcome{outcome=\"miss\"}", 3}};
  snap.gauges = {{"alloc.count{stage=\"fleet.task\"}", 384.0},
                 {"cache.hit_rate", 0.25}};
  HistogramSample plain;
  plain.name = "fleet.task_us";
  plain.count = 6;
  plain.sum = 25.5;
  plain.min = 1.0;
  plain.max = 12.0;
  plain.bounds = {1.0, 10.0};
  plain.buckets = {1, 2, 3};
  HistogramSample cell;
  cell.name = "fleet.task_us{neighbour=\"3\"}";
  cell.count = 2;
  cell.sum = 7.0;
  snap.histograms = {plain, cell};
  return snap;
}

constexpr const char* kGolden =
    "# TYPE campaign_queries counter\n"
    "campaign_queries 15\n"
    "# TYPE fleet_query_outcome counter\n"
    "fleet_query_outcome{outcome=\"__overflow__\"} 1\n"
    "fleet_query_outcome{outcome=\"hit\"} 12\n"
    "fleet_query_outcome{outcome=\"miss\"} 3\n"
    "# TYPE alloc_count gauge\n"
    "alloc_count{stage=\"fleet.task\"} 384\n"
    "# TYPE cache_hit_rate gauge\n"
    "cache_hit_rate 0.25\n"
    "# TYPE fleet_task_us histogram\n"
    "fleet_task_us_bucket{le=\"1\"} 1\n"
    "fleet_task_us_bucket{le=\"10\"} 3\n"
    "fleet_task_us_bucket{le=\"+Inf\"} 6\n"
    "fleet_task_us_sum 25.5\n"
    "fleet_task_us_count 6\n"
    "fleet_task_us_bucket{neighbour=\"3\",le=\"+Inf\"} 2\n"
    "fleet_task_us_sum{neighbour=\"3\"} 7\n"
    "fleet_task_us_count{neighbour=\"3\"} 2\n";

TEST(Expo, SanitizeMetricName) {
  EXPECT_EQ(sanitize_metric_name("fleet.query_outcome"),
            "fleet_query_outcome");
  EXPECT_EQ(sanitize_metric_name("rups:custom"), "rups:custom");
  EXPECT_EQ(sanitize_metric_name("7teen"), "_7teen");
  EXPECT_EQ(sanitize_metric_name("a-b c"), "a_b_c");
  EXPECT_EQ(sanitize_metric_name(""), "_");
}

TEST(Expo, RenderMatchesGolden) {
  EXPECT_EQ(render_prometheus(golden_snapshot()), kGolden);
}

TEST(Expo, TwoRendersAreBitIdentical) {
  const MetricsSnapshot snap = golden_snapshot();
  EXPECT_EQ(render_prometheus(snap), render_prometheus(snap));
}

TEST(Expo, ParsePrometheusRoundTripsEverySample) {
  const auto samples = parse_prometheus(kGolden);
  // 4 counters + 2 gauges + (3 buckets + sum + count) + (1 bucket + sum +
  // count) = 14 sample lines.
  EXPECT_EQ(samples.size(), 14u);
  EXPECT_DOUBLE_EQ(samples.at("fleet_query_outcome{outcome=\"hit\"}"), 12.0);
  EXPECT_DOUBLE_EQ(
      samples.at("fleet_query_outcome{outcome=\"__overflow__\"}"), 1.0);
  EXPECT_DOUBLE_EQ(samples.at("alloc_count{stage=\"fleet.task\"}"), 384.0);
  EXPECT_DOUBLE_EQ(samples.at("fleet_task_us_bucket{le=\"+Inf\"}"), 6.0);
  EXPECT_DOUBLE_EQ(samples.at("fleet_task_us_sum{neighbour=\"3\"}"), 7.0);
  EXPECT_THROW((void)parse_prometheus("name_without_value\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_prometheus("name not_a_number\n"),
               std::runtime_error);
}

TEST(Expo, HostileLabelValuesAreEscapedAndStillParse) {
  MetricsSnapshot snap;
  // family_cell_name embeds the label value raw; this one carries a quote,
  // a newline and a backslash.
  GaugeSample g;
  g.name = std::string("weird.family{k=\"a\"b\nc\\d\"}");
  g.value = 1.0;
  snap.gauges = {g};
  const std::string text = render_prometheus(snap);
  // Escaped per the exposition format: \" for the quote, \n (two chars)
  // for the newline, \\ for the backslash — the rendered text itself has
  // no raw newline inside the label.
  EXPECT_NE(text.find("weird_family{k=\"a\\\"b\\nc\\\\d\"} 1\n"),
            std::string::npos);
  const auto samples = parse_prometheus(text);
  EXPECT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples.begin()->second, 1.0);
}

// ---------------------------------------------------------------------------
// Exporter smoke tests (real sockets on 127.0.0.1, ephemeral ports)

TEST(MetricsExporter, ServesMetricsHealthAnd404) {
  MetricsExporter exporter({}, [] { return golden_snapshot(); });
  ASSERT_TRUE(exporter.start());
  ASSERT_NE(exporter.port(), 0);

  std::string body;
  EXPECT_EQ(http_get("127.0.0.1", exporter.port(), "/metrics", body), 200);
  EXPECT_EQ(body, kGolden);

  // No health callback: /healthz reports a default (alert-free) verdict.
  EXPECT_EQ(http_get("127.0.0.1", exporter.port(), "/healthz", body), 200);
  EXPECT_NE(body.find("\"healthy\""), std::string::npos);

  EXPECT_EQ(http_get("127.0.0.1", exporter.port(), "/nope", body), 404);

  EXPECT_EQ(exporter.requests(), 3u);
  exporter.stop();
  exporter.stop();  // idempotent
  EXPECT_FALSE(exporter.running());
  EXPECT_EQ(http_get("127.0.0.1", exporter.port(), "/metrics", body), -1);
}

TEST(MetricsExporter, UnhealthyReportYields503) {
  MetricsExporter exporter(
      {}, [] { return MetricsSnapshot{}; },
      [] {
        HealthReport report;
        report.alerts.push_back({"availability", 0.1, 0.9, 0.0, 10});
        return report;
      });
  ASSERT_TRUE(exporter.start());
  std::string body;
  EXPECT_EQ(http_get("127.0.0.1", exporter.port(), "/healthz", body), 503);
  EXPECT_NE(body.find("availability"), std::string::npos);
  exporter.stop();
}

TEST(MetricsExporter, ServesLiveRegistryMidCampaign) {
  // A short fleet campaign runs on a worker thread while this thread
  // scrapes: every scrape must return parseable exposition, and once the
  // campaign has run the fleet outcome family must appear.
  sim::Scenario scenario =
      sim::Scenario::fleet(3, road::EnvironmentType::kFourLaneUrban, 3);
  sim::FleetCampaignConfig cfg;
  cfg.base.max_queries = 6;

  MetricsExporter exporter(
      {}, [] { return Registry::global().snapshot(); });
  ASSERT_TRUE(exporter.start());

  std::atomic<bool> done{false};
  std::thread campaign([&] {
    sim::FleetSimulation fleet(scenario, cfg);
    (void)sim::run_fleet_campaign(fleet, cfg);
    done.store(true);
  });

  std::size_t scrapes = 0;
  while (!done.load()) {
    std::string body;
    ASSERT_EQ(http_get("127.0.0.1", exporter.port(), "/metrics", body), 200);
    EXPECT_NO_THROW((void)parse_prometheus(body));
    ++scrapes;
  }
  campaign.join();

  std::string body;
  ASSERT_EQ(http_get("127.0.0.1", exporter.port(), "/metrics", body), 200);
  EXPECT_NE(body.find("fleet_query_outcome{outcome="), std::string::npos);
  exporter.stop();
  EXPECT_GE(scrapes, 1u);
}

}  // namespace
}  // namespace rups::obs
