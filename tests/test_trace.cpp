#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace rups::sim {
namespace {

VehicleTrace sample_trace() {
  VehicleTrace t;
  for (int i = 0; i < 5; ++i) {
    sensors::ImuSample s;
    s.time_s = i * 0.005;
    s.accel_mps2 = {0.1 * i, -0.2, 9.8};
    s.gyro_rps = {0.0, 0.001, 0.02 * i};
    s.mag_ut = {-30.0, 5.0, -35.0};
    t.imu.push_back(s);
  }
  t.obd.push_back({0.0, 10.0});
  t.obd.push_back({3.0, 12.5});
  sensors::RssiMeasurement m;
  m.time_s = 0.015;
  m.channel_index = 42;
  m.rssi_dbm = -70.5;
  m.radio = 2;
  t.rssi.push_back(m);
  sensors::GpsFix f;
  f.time_s = 1.0;
  f.x_m = 123.5;
  f.y_m = -77.25;
  f.valid = true;
  t.gps.push_back(f);
  t.true_pos_of_metre = {0.1, 1.2, 2.3};
  return t;
}

class TraceCsv : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() /
      ("rups_trace_" + std::to_string(::getpid()) + ".csv");
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(TraceCsv, RoundTrip) {
  const auto original = sample_trace();
  original.save_csv(path_);
  const auto loaded = VehicleTrace::load_csv(path_);

  ASSERT_EQ(loaded.imu.size(), original.imu.size());
  EXPECT_NEAR(loaded.imu[3].accel_mps2.x, original.imu[3].accel_mps2.x, 1e-6);
  EXPECT_NEAR(loaded.imu[4].gyro_rps.z, original.imu[4].gyro_rps.z, 1e-9);

  ASSERT_EQ(loaded.obd.size(), 2u);
  EXPECT_NEAR(loaded.obd[1].speed_mps, 12.5, 1e-9);

  ASSERT_EQ(loaded.rssi.size(), 1u);
  EXPECT_EQ(loaded.rssi[0].channel_index, 42u);
  EXPECT_NEAR(loaded.rssi[0].rssi_dbm, -70.5, 1e-9);
  EXPECT_EQ(loaded.rssi[0].radio, 2);

  ASSERT_EQ(loaded.gps.size(), 1u);
  EXPECT_TRUE(loaded.gps[0].valid);
  EXPECT_NEAR(loaded.gps[0].y_m, -77.25, 1e-9);

  ASSERT_EQ(loaded.true_pos_of_metre.size(), 3u);
  EXPECT_NEAR(loaded.true_pos_of_metre[2], 2.3, 1e-9);
}

TEST_F(TraceCsv, EmptyTraceRoundTrip) {
  VehicleTrace empty;
  empty.save_csv(path_);
  const auto loaded = VehicleTrace::load_csv(path_);
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceReplay, MergesStreamsInTimeOrder) {
  // An engine driven by replay must see OBD before IMU at equal timestamps;
  // verify indirectly: replay a minimal trace and check the odometer moved.
  VehicleTrace t;
  t.obd.push_back({0.0, 10.0});
  t.obd.push_back({5.0, 10.0});
  for (int i = 0; i < 2000; ++i) {
    sensors::ImuSample s;
    s.time_s = i * 0.005;
    s.accel_mps2 = {0.0, 0.0, 9.80665};
    s.mag_ut = {-30.0, 0.0, -35.0};
    t.imu.push_back(s);
  }
  core::RupsConfig cfg;
  cfg.channels = 8;
  // Synthetic trace is already vehicle-frame: skip reorientation.
  cfg.assume_aligned_sensors = true;
  core::RupsEngine engine(cfg);
  replay_trace(t, engine);
  // 10 s at 10 m/s, minus heading-initialization delays.
  EXPECT_GT(engine.odometer_m(), 80.0);
}

TEST(TraceReplay, EmptyTraceIsNoop) {
  VehicleTrace empty;
  core::RupsConfig cfg;
  cfg.channels = 4;
  core::RupsEngine engine(cfg);
  replay_trace(empty, engine);
  EXPECT_DOUBLE_EQ(engine.odometer_m(), 0.0);
}

}  // namespace
}  // namespace rups::sim
