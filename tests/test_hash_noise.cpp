#include "util/hash_noise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace rups::util {
namespace {

TEST(HashNoise, Deterministic) {
  HashNoise n(99);
  EXPECT_EQ(n.uniform(5), n.uniform(5));
  EXPECT_EQ(n.gaussian2(1, 2), n.gaussian2(1, 2));
}

TEST(HashNoise, SeedChangesValues) {
  HashNoise a(1), b(2);
  EXPECT_NE(a.uniform(5), b.uniform(5));
}

TEST(HashNoise, KeyPairOrderMatters) {
  HashNoise n(7);
  EXPECT_NE(n.uniform2(1, 2), n.uniform2(2, 1));
}

TEST(HashNoise, UniformIsUniform) {
  HashNoise n(3);
  RunningStats stats;
  for (std::int64_t k = 0; k < 50000; ++k) stats.add(n.uniform(k));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(HashNoise, GaussianIsStandardNormal) {
  HashNoise n(4);
  RunningStats stats;
  for (std::int64_t k = 0; k < 50000; ++k) stats.add(n.gaussian(k));
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(InverseNormalCdf, KnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447), 1.0, 1e-3);
}

TEST(InverseNormalCdf, ExtremesAreInfinite) {
  EXPECT_EQ(inverse_normal_cdf(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(inverse_normal_cdf(1.0), std::numeric_limits<double>::infinity());
}

TEST(LatticeField1D, Deterministic) {
  LatticeField1D f(123, 10.0, 2);
  EXPECT_EQ(f.value(3.7), f.value(3.7));
  LatticeField1D g(123, 10.0, 2);
  EXPECT_EQ(f.value(-100.25), g.value(-100.25));
}

TEST(LatticeField1D, DifferentSeedsDecorrelated) {
  LatticeField1D f(1, 10.0), g(2, 10.0);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(f.value(i * 0.5));
    b.push_back(g.value(i * 0.5));
  }
  EXPECT_LT(std::abs(pearson(a, b)), 0.15);
}

TEST(LatticeField1D, ApproxUnitVariance) {
  for (int octaves : {1, 2, 3}) {
    LatticeField1D f(55, 7.0, octaves);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) stats.add(f.value(i * 1.37));
    EXPECT_NEAR(stats.mean(), 0.0, 0.1) << "octaves=" << octaves;
    EXPECT_GT(stats.stddev(), 0.7) << "octaves=" << octaves;
    EXPECT_LT(stats.stddev(), 1.3) << "octaves=" << octaves;
  }
}

TEST(LatticeField1D, NearbyPointsCorrelated) {
  LatticeField1D f(9, 50.0, 1);
  // Points 1 m apart on a 50 m correlation length must be nearly equal.
  RunningStats diff;
  for (int i = 0; i < 5000; ++i) {
    const double x = i * 13.3;
    diff.add(std::abs(f.value(x) - f.value(x + 1.0)));
  }
  EXPECT_LT(diff.mean(), 0.2);
}

TEST(LatticeField1D, FarPointsDecorrelated) {
  LatticeField1D f(9, 5.0, 1);
  std::vector<double> a, b;
  for (int i = 0; i < 3000; ++i) {
    a.push_back(f.value(i * 40.0));
    b.push_back(f.value(i * 40.0 + 20.0));  // 4 correlation lengths away
  }
  EXPECT_LT(std::abs(pearson(a, b)), 0.15);
}

TEST(LatticeField1D, CorrelationDecaysWithDistance) {
  LatticeField1D f(17, 10.0, 1);
  auto corr_at = [&](double sep) {
    std::vector<double> a, b;
    for (int i = 0; i < 4000; ++i) {
      a.push_back(f.value(i * 53.0));
      b.push_back(f.value(i * 53.0 + sep));
    }
    return pearson(a, b);
  };
  const double c1 = corr_at(1.0);
  const double c5 = corr_at(5.0);
  const double c20 = corr_at(20.0);
  EXPECT_GT(c1, c5);
  EXPECT_GT(c5, c20);
  EXPECT_GT(c1, 0.8);
}

class LatticeOctaveSweep : public ::testing::TestWithParam<int> {};

TEST_P(LatticeOctaveSweep, ZeroCrossingRateGrowsWithOctaves) {
  // More octaves => more fine detail => not fewer sign changes.
  LatticeField1D f(31, 20.0, GetParam());
  int crossings = 0;
  double prev = f.value(0.0);
  for (int i = 1; i < 5000; ++i) {
    const double v = f.value(i * 0.5);
    if ((v > 0) != (prev > 0)) ++crossings;
    prev = v;
  }
  EXPECT_GT(crossings, 10 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Octaves, LatticeOctaveSweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace rups::util
