#include "sim/fleet_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rups::sim {
namespace {

Scenario small_fleet_scenario(std::size_t vehicles) {
  Scenario s = Scenario::fleet(5, road::EnvironmentType::kFourLaneUrban,
                               vehicles, /*gap_m=*/30.0);
  s.route_length_m = 6'000.0;
  return s;
}

TEST(ScenarioFleet, LaysVehiclesOutFrontToBack) {
  const Scenario s =
      Scenario::fleet(3, road::EnvironmentType::kFourLaneUrban, 4, 25.0);
  ASSERT_EQ(s.vehicles.size(), 4u);
  // Vehicle 0 leads; offsets decrease towards the rear car at 0.
  EXPECT_DOUBLE_EQ(s.vehicles[0].start_offset_m, 75.0);
  EXPECT_DOUBLE_EQ(s.vehicles[1].start_offset_m, 50.0);
  EXPECT_DOUBLE_EQ(s.vehicles[2].start_offset_m, 25.0);
  EXPECT_DOUBLE_EQ(s.vehicles[3].start_offset_m, 0.0);
  // Distinct per-vehicle seeds.
  EXPECT_NE(s.vehicles[0].seed, s.vehicles[1].seed);
  EXPECT_NE(s.vehicles[1].seed, s.vehicles[2].seed);
}

TEST(FleetSimulation, CampaignQueriesEveryNeighbourEachRound) {
  FleetCampaignConfig cfg;
  cfg.base.warmup_s = 350.0;
  cfg.base.interval_s = 5.0;
  cfg.base.max_queries = 6;  // rounds
  FleetSimulation fleet(small_fleet_scenario(4), cfg);
  EXPECT_EQ(fleet.ego_index(), 3u);  // rear car by default

  const FleetCampaignResult result = run_fleet_campaign(fleet, cfg);
  ASSERT_EQ(result.rounds.size(), 6u);
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.outcomes.size(), 3u);  // every neighbour, every round
    for (const auto& o : round.outcomes) {
      EXPECT_NE(o.neighbour_index, fleet.ego_index());
      EXPECT_LT(o.neighbour_index, 4u);
      // The ego is the rear car: every neighbour is ahead, truth < 0.
      EXPECT_LT(o.truth_m, 0.0);
    }
  }

  // The convoy drives the same road, so the fleet should resolve most
  // neighbours once contexts are built.
  EXPECT_GT(result.availability(), 0.5);
  // Cache sanity: queries flowed through the shards, and after round one
  // the tracker carries the bulk of them.
  EXPECT_EQ(result.cache.queries, 6u * 3u);
  EXPECT_GT(result.cache.tracking_hits, 0u);
  // V2V sessions moved real bytes (full context + tails, per neighbour).
  EXPECT_GT(result.v2v_bytes, 0u);
  // Accuracy: fleet estimates against ground truth stay street-level.
  for (const double e : result.rups_errors()) EXPECT_LT(e, 50.0);
}

TEST(FleetSimulation, ExplicitEgoIndexIsRespected) {
  FleetCampaignConfig cfg;
  cfg.base.warmup_s = 300.0;
  cfg.base.interval_s = 5.0;
  cfg.base.max_queries = 2;
  cfg.ego_index = 0;  // the FRONT car queries backwards
  FleetSimulation fleet(small_fleet_scenario(3), cfg);
  EXPECT_EQ(fleet.ego_index(), 0u);
  const auto result = run_fleet_campaign(fleet, cfg);
  for (const auto& round : result.rounds) {
    for (const auto& o : round.outcomes) {
      EXPECT_NE(o.neighbour_index, 0u);
      // Ego leads: neighbours are behind, truth > 0.
      EXPECT_GT(o.truth_m, 0.0);
    }
  }
}

TEST(FleetSimulation, CacheDisabledStillAnswers) {
  FleetCampaignConfig cfg;
  cfg.base.warmup_s = 350.0;
  cfg.base.interval_s = 5.0;
  cfg.base.max_queries = 3;
  cfg.use_cache = false;
  FleetSimulation fleet(small_fleet_scenario(3), cfg);
  const auto result = run_fleet_campaign(fleet, cfg);
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_EQ(result.cache.tracking_hits, 0u);
  EXPECT_GT(result.cache.full_searches, 0u);
  EXPECT_GT(result.availability(), 0.0);
}

TEST(FleetSimulation, HealthMonitorSeesEveryOutcome) {
  FleetCampaignConfig cfg;
  cfg.base.warmup_s = 350.0;
  cfg.base.interval_s = 5.0;
  cfg.base.max_queries = 4;
  cfg.base.enable_health = true;
  FleetSimulation fleet(small_fleet_scenario(3), cfg);
  const auto result = run_fleet_campaign(fleet, cfg);
  std::size_t outcomes = 0;
  for (const auto& round : result.rounds) outcomes += round.outcomes.size();
  EXPECT_EQ(result.health.samples, outcomes);
}

}  // namespace
}  // namespace rups::sim
