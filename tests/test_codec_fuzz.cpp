#include "v2v/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

// Codec robustness: (a) decode(encode(x)) == x for every value the wire
// format represents exactly, and (b) the decoder survives arbitrary
// garbage — random buffers, truncations, bit flips — by throwing
// std::invalid_argument, never by crashing or reading out of bounds. This
// binary also runs under the asan/ubsan lane (scripts/verify_matrix.sh),
// where "survives" is checked at the memory level, not just the exception
// level.

namespace rups::v2v {
namespace {

/// Trajectory whose values sit exactly on the wire grid: integral dBm
/// (the format stores dBm+128 in a u8), centisecond timestamps, headings
/// quantized by the codec's own i16 scale.
core::ContextTrajectory grid_trajectory(std::uint64_t seed,
                                        std::size_t metres,
                                        std::size_t channels,
                                        std::uint64_t first_metre = 0) {
  util::Rng rng(seed);
  core::ContextTrajectory t(channels, std::max<std::size_t>(1, metres));
  if (first_metre > 0) t.rebase(first_metre);
  for (std::size_t i = 0; i < metres; ++i) {
    core::PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if (rng.uniform() < 0.2) continue;  // leave some channels unusable
      const int dbm = -120 + static_cast<int>(rng.uniform(0.0, 100.0));
      pv.set(c, static_cast<float>(dbm));
    }
    core::GeoSample geo;
    geo.time_s = static_cast<double>(i) * 0.25;  // centisecond grid
    geo.heading_rad = 0.0;
    t.append(geo, std::move(pv));
  }
  return t;
}

void expect_equal(const core::ContextTrajectory& a,
                  const core::ContextTrajectory& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.channels(), b.channels());
  ASSERT_EQ(a.first_metre(), b.first_metre());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const core::PowerVector& pa = a.power(i);
    const core::PowerVector& pb = b.power(i);
    for (std::size_t c = 0; c < a.channels(); ++c) {
      ASSERT_EQ(pa.usable(c), pb.usable(c)) << "metre " << i << " ch " << c;
      if (pa.usable(c)) {
        ASSERT_EQ(pa.at(c), pb.at(c)) << "metre " << i << " ch " << c;
      }
    }
    EXPECT_NEAR(a.geo(i).time_s, b.geo(i).time_s, 0.005 + 1e-9);
    EXPECT_NEAR(a.geo(i).heading_rad, b.geo(i).heading_rad, 1e-3);
  }
}

TEST(CodecRoundTrip, GridValuesSurviveExactly) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto t = grid_trajectory(seed, 64, 48);
    const auto bytes = TrajectoryCodec::encode(t);
    EXPECT_EQ(bytes.size(), TrajectoryCodec::encoded_size(64, 48));
    const auto back = TrajectoryCodec::decode(bytes);
    expect_equal(t, back);
  }
}

TEST(CodecRoundTrip, NonZeroFirstMetreSurvives) {
  const auto t = grid_trajectory(4, 32, 20, /*first_metre=*/777);
  const auto back = TrajectoryCodec::decode(TrajectoryCodec::encode(t));
  EXPECT_EQ(back.first_metre(), 777u);
  expect_equal(t, back);
}

TEST(CodecRoundTrip, EmptyAndSingleMetre) {
  const auto empty = grid_trajectory(5, 0, 10);
  expect_equal(empty, TrajectoryCodec::decode(TrajectoryCodec::encode(empty)));
  const auto one = grid_trajectory(6, 1, 10);
  expect_equal(one, TrajectoryCodec::decode(TrajectoryCodec::encode(one)));
}

TEST(CodecRoundTrip, TailEncodingDecodesToTheTail) {
  const auto t = grid_trajectory(7, 50, 16);
  const auto tail_bytes = TrajectoryCodec::encode_tail(t, 30);
  const auto tail = TrajectoryCodec::decode(tail_bytes);
  EXPECT_EQ(tail.first_metre(), 30u);
  ASSERT_EQ(tail.size(), 20u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const core::PowerVector& pa = t.power(30 + i);
    const core::PowerVector& pb = tail.power(i);
    for (std::size_t c = 0; c < t.channels(); ++c) {
      ASSERT_EQ(pa.usable(c), pb.usable(c));
      if (pa.usable(c)) ASSERT_EQ(pa.at(c), pb.at(c));
    }
  }
}

/// Decoder survival: decode() must either return or throw
/// std::invalid_argument. Returns true when the buffer decoded cleanly.
bool survives(const std::vector<std::uint8_t>& bytes) {
  try {
    const auto t = TrajectoryCodec::decode(bytes);
    // Touch the result so a silently corrupt trajectory would be noticed
    // by the sanitizer lane.
    volatile std::size_t sink = t.size() + t.channels();
    (void)sink;
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

TEST(CodecFuzz, RandomBuffersNeverCrashTheDecoder) {
  util::Rng rng(0xF422);
  std::size_t clean = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform(0.0, 600.0));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
    }
    if (survives(bytes)) ++clean;
  }
  // Random bytes essentially never carry the magic + consistent sizes.
  EXPECT_EQ(clean, 0u);
}

TEST(CodecFuzz, TruncationsNeverCrashTheDecoder) {
  const auto t = grid_trajectory(8, 40, 24);
  const auto full = TrajectoryCodec::encode(t);
  util::Rng rng(0xF423);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t keep =
        static_cast<std::size_t>(rng.uniform(0.0, static_cast<double>(full.size())));
    std::vector<std::uint8_t> cut(full.begin(),
                                  full.begin() + static_cast<long>(keep));
    EXPECT_FALSE(survives(cut)) << "truncation to " << keep << " bytes";
  }
  // And appending junk must also be rejected (size mismatch).
  std::vector<std::uint8_t> longer = full;
  longer.push_back(0xAB);
  EXPECT_FALSE(survives(longer));
}

TEST(CodecFuzz, BitFlipsNeverCrashTheDecoder) {
  const auto t = grid_trajectory(9, 40, 24);
  const auto full = TrajectoryCodec::encode(t);
  util::Rng rng(0xF424);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> mutated = full;
    const int flips = 1 + static_cast<int>(rng.uniform(0.0, 8.0));
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(mutated.size())));
      const int bit = static_cast<int>(rng.uniform(0.0, 8.0));
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
    // A flip in the payload may still decode (values are raw bytes); a flip
    // in the header must throw. Either way: no crash, no UB.
    (void)survives(mutated);
  }
}

}  // namespace
}  // namespace rups::v2v
