// Compiled with -DRUPS_OBS_DISABLED (see tests/CMakeLists.txt): proves the
// no-op configuration builds cleanly against the full obs API surface and
// that instrumentation statements really cost nothing — stream operands and
// metric updates must never be evaluated.
//
// This binary deliberately links the enabled rups_obs library: the
// always-on types (MetricsSnapshot, Logger, TraceSink) are shared, while
// the stubbed types live in obs::noop, so mixing configurations in one
// program is ODR-safe.

#ifndef RUPS_OBS_DISABLED
#error "this test must be compiled with RUPS_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include "obs/obs.hpp"

namespace rups::obs {
namespace {

TEST(ObsDisabled, MetricsAreInertNoOps) {
  Counter& c = Registry::global().counter("disabled.counter");
  c.inc(1'000'000);
  EXPECT_EQ(c.value(), 0u);

  Gauge& g = Registry::global().gauge("disabled.gauge");
  g.set(3.0);
  g.add(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);

  Histogram& h = Registry::global().histogram("disabled.histogram");
  h.record(123.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.bounds().empty());
  EXPECT_EQ(h.sample("s").count, 0u);
}

TEST(ObsDisabled, SnapshotIsEmpty) {
  const MetricsSnapshot snap = Registry::global().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  // The snapshot type itself stays fully functional (it is shared with
  // enabled builds, e.g. inside sim::CampaignResult).
  EXPECT_EQ(MetricsSnapshot::from_json(snap.to_json()), snap);
}

TEST(ObsDisabled, TimerCompilesAndDoesNothing) {
  Histogram& h = Registry::global().histogram("disabled.latency");
  {
    ObsTimer timer(&h, "disabled.span");
    ObsTimer unnamed(nullptr);
    EXPECT_DOUBLE_EQ(timer.stop(), 0.0);
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsDisabled, LogStatementsDoNotEvaluateOperands) {
  int evaluations = 0;
  const auto side_effect = [&]() {
    ++evaluations;
    return 1;
  };
  RUPS_LOG(kError) << "never emitted " << side_effect();
  RUPS_LOG(kTrace) << side_effect() << side_effect();
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsDisabled, FlightRecorderIsInert) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.set_dump_dir("/nonexistent/should/never/be/written");
  rec.record(EventType::kSeekAccepted, "disabled.event", 1.0, 2.0, 3.0);
  EXPECT_TRUE(rec.recent().empty());
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.capacity(), 0u);
  EXPECT_TRUE(rec.anomaly("disabled.anomaly", "detail").empty());
  EXPECT_EQ(rec.anomalies(), 0u);
  EXPECT_TRUE(rec.dump_dir().empty());
  // The always-on event vocabulary survives for tooling.
  EXPECT_STREQ(event_type_name(EventType::kSeekRejected), "seek_rejected");
  EXPECT_EQ(events_to_json({}), "[]");
}

TEST(ObsDisabled, HealthMonitorStaysFunctional) {
  // The monitor runs on explicit ground-truth feeds, so it works (and
  // reports identical results) without the metrics machinery — only the
  // anomaly-bundle / gauge / log side effects compile away.
  HealthConfig cfg;
  cfg.window = 8;
  cfg.min_samples = 2;
  cfg.min_availability = 0.5;
  HealthMonitor monitor(cfg);
  for (int i = 0; i < 5; ++i) monitor.on_query(false, std::nullopt, 10.0);
  const HealthReport report = monitor.report();
  EXPECT_EQ(report.samples, 5u);
  EXPECT_DOUBLE_EQ(report.availability, 0.0);
  EXPECT_FALSE(report.healthy());
  EXPECT_FALSE(report.to_json().empty());
}

TEST(ObsDisabled, ExponentialBoundsStillWork) {
  // Bucket maths is shared between configurations.
  EXPECT_EQ(exponential_bounds(1.0, 10.0, 3),
            (std::vector<double>{1.0, 10.0, 100.0}));
}

TEST(ObsDisabled, LabeledFamiliesAreInert) {
  CounterFamily& counters =
      Registry::global().counter_family("disabled.outcome", "outcome", 4);
  counters.with("hit").inc(100);
  counters.with(std::uint64_t{7}).inc();
  EXPECT_EQ(counters.with("hit").value(), 0u);
  EXPECT_EQ(counters.cells(), 0u);
  EXPECT_EQ(counters.max_cells(), 0u);
  EXPECT_TRUE(counters.name().empty());

  GaugeFamily& gauges =
      Registry::global().gauge_family("disabled.staleness", "neighbour");
  gauges.with(std::uint64_t{3}).set(42.0);
  EXPECT_DOUBLE_EQ(gauges.with(std::uint64_t{3}).value(), 0.0);

  HistogramFamily& hists = Registry::global().histogram_family(
      "disabled.task_us", "neighbour", {10.0, 100.0});
  hists.with("0").record(55.0);
  EXPECT_EQ(hists.with("0").count(), 0u);

  // Nothing reaches the snapshot, including the drop counter.
  const MetricsSnapshot snap = Registry::global().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(ObsDisabled, FamilyCellNamingStaysAvailableForTooling) {
  // Diff/report tools parse labeled names in both configurations.
  EXPECT_EQ(family_cell_name("a.b", "k", "v"), "a.b{k=\"v\"}");
  EXPECT_EQ(label_of(12), "12");
  EXPECT_STREQ(kOverflowLabel, "__overflow__");
}

TEST(ObsDisabled, TimeSeriesCollectorIsInert) {
  TimeSeriesConfig cfg;
  cfg.window_s = 10.0;
  TimeSeriesCollector collector(cfg);
  collector.track(1);
  collector.begin(0.0);
  collector.note_estimate(1, 5.0);
  collector.observe(20.0);
  EXPECT_FALSE(collector.active());
  const TimeSeriesData data = collector.finish(30.0);
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.windows(), 0u);
}

TEST(ObsDisabled, TimeSeriesDataTypeStaysFunctional) {
  // TimeSeriesData is always-on plain data (campaign results embed it in
  // both configurations), so JSON/CSV and quantile maths must still work.
  TimeSeriesData data;
  data.window_s = 5.0;
  data.window_begin_s = {0.0};
  data.window_end_s = {5.0};
  data.columns.push_back({"x", "rate", {2.0}});
  EXPECT_EQ(TimeSeriesData::from_json(data.to_json()), data);
  ASSERT_NE(data.column("x", "rate"), nullptr);
  EXPECT_DOUBLE_EQ(window_quantile({10.0, 20.0}, {5, 4, 1}, 0.8), 17.5);
}

TEST(ObsDisabled, SpanContextIsInert) {
  // Span ids are only assigned by enabled timers, so the ambient context
  // stays invalid — but every entry point remains callable.
  Histogram& h = Registry::global().histogram("disabled.span_us");
  {
    ObsTimer outer(&h, "outer");
    EXPECT_EQ(outer.span_id(), 0u);
    EXPECT_EQ(outer.trace_id(), 0u);
    EXPECT_FALSE(current_span().valid());
    EXPECT_TRUE(active_span_chain().empty());
    // The explicit-parent (cross-thread) constructor compiles and stays
    // inert too.
    ObsTimer child(&h, "child", current_span());
    EXPECT_EQ(child.span_id(), 0u);
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsDisabled, SpanProfilerIsInert) {
  SpanProfiler profiler;
  profiler.start();
  EXPECT_FALSE(profiler.running());  // no thread is ever spawned
  profiler.stop();
  const FoldedProfile profile = profiler.profile();
  EXPECT_TRUE(profile.rows.empty());
  EXPECT_EQ(profile.total_samples, 0u);
  // FoldedProfile itself is always-on plain data: tooling that loads a
  // saved profile still works in this configuration.
  FoldedProfile manual;
  manual.rows = {{"a;b", 3}};
  manual.total_samples = 3;
  EXPECT_EQ(manual.to_folded(), "a;b 3\n");
  ASSERT_EQ(manual.attribution().size(), 2u);
  EXPECT_FALSE(manual.attribution_table().empty());
}

TEST(ObsDisabled, AllocAccountingIsInert) {
  EXPECT_FALSE(alloc_accounting_available());
  const AllocTotals t = thread_alloc_totals();
  EXPECT_EQ(t.count, 0u);
  EXPECT_EQ(t.bytes, 0u);
  EXPECT_EQ(process_alloc_totals().count, 0u);
  enable_alloc_census(true);
  EXPECT_FALSE(alloc_census_enabled());
  reset_alloc_census();
  publish_alloc_census();
  EXPECT_TRUE(alloc_census().empty());
}

TEST(ObsDisabled, PrometheusExportStaysFullyFunctional) {
  // The export path is always-on: a disabled build still renders (and
  // serves) whatever snapshot it is handed — the registry just never
  // produces a non-empty one.
  EXPECT_EQ(sanitize_metric_name("fleet.query_outcome"),
            "fleet_query_outcome");
  MetricsSnapshot snap;
  snap.counters = {{"a.b{k=\"v\"}", 2}};
  const std::string text = render_prometheus(snap);
  EXPECT_NE(text.find("a_b{k=\"v\"} 2"), std::string::npos);
  EXPECT_EQ(parse_prometheus(text).at("a_b{k=\"v\"}"), 2.0);

  MetricsExporter exporter({}, [snap] { return snap; });
  ASSERT_TRUE(exporter.start());
  std::string body;
  EXPECT_EQ(http_get("127.0.0.1", exporter.port(), "/metrics", body), 200);
  EXPECT_EQ(body, text);
  exporter.stop();
}

TEST(ObsDisabled, SpanSamplingSurfaceIsInert) {
  Histogram& h = Registry::global().histogram("disabled.sample_us");
  ObsTimer span(&h, "disabled.sampled");
  // No spans are published in this configuration, so a sample sweep sees
  // nothing from this thread (the enabled library may still be linked, so
  // other threads' stacks are out of scope here).
  for (const SampledStack& s : sample_span_stacks()) {
    for (const char* frame : s.frames) {
      EXPECT_NE(std::string_view(frame), "disabled.sampled");
    }
  }
}

}  // namespace
}  // namespace rups::obs
