// Compiled with -DRUPS_OBS_DISABLED (see tests/CMakeLists.txt): proves the
// no-op configuration builds cleanly against the full obs API surface and
// that instrumentation statements really cost nothing — stream operands and
// metric updates must never be evaluated.
//
// This binary deliberately links the enabled rups_obs library: the
// always-on types (MetricsSnapshot, Logger, TraceSink) are shared, while
// the stubbed types live in obs::noop, so mixing configurations in one
// program is ODR-safe.

#ifndef RUPS_OBS_DISABLED
#error "this test must be compiled with RUPS_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include "obs/obs.hpp"

namespace rups::obs {
namespace {

TEST(ObsDisabled, MetricsAreInertNoOps) {
  Counter& c = Registry::global().counter("disabled.counter");
  c.inc(1'000'000);
  EXPECT_EQ(c.value(), 0u);

  Gauge& g = Registry::global().gauge("disabled.gauge");
  g.set(3.0);
  g.add(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);

  Histogram& h = Registry::global().histogram("disabled.histogram");
  h.record(123.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.bounds().empty());
  EXPECT_EQ(h.sample("s").count, 0u);
}

TEST(ObsDisabled, SnapshotIsEmpty) {
  const MetricsSnapshot snap = Registry::global().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  // The snapshot type itself stays fully functional (it is shared with
  // enabled builds, e.g. inside sim::CampaignResult).
  EXPECT_EQ(MetricsSnapshot::from_json(snap.to_json()), snap);
}

TEST(ObsDisabled, TimerCompilesAndDoesNothing) {
  Histogram& h = Registry::global().histogram("disabled.latency");
  {
    ObsTimer timer(&h, "disabled.span");
    ObsTimer unnamed(nullptr);
    EXPECT_DOUBLE_EQ(timer.stop(), 0.0);
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsDisabled, LogStatementsDoNotEvaluateOperands) {
  int evaluations = 0;
  const auto side_effect = [&]() {
    ++evaluations;
    return 1;
  };
  RUPS_LOG(kError) << "never emitted " << side_effect();
  RUPS_LOG(kTrace) << side_effect() << side_effect();
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsDisabled, ExponentialBoundsStillWork) {
  // Bucket maths is shared between configurations.
  EXPECT_EQ(exponential_bounds(1.0, 10.0, 3),
            (std::vector<double>{1.0, 10.0, 100.0}));
}

}  // namespace
}  // namespace rups::obs
