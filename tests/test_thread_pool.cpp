#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rups::util {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.submit([&] { counter.fetch_add(1); });
  fut.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    n.fetch_add(1);
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, ParallelForReduction) {
  ThreadPool pool(4);
  std::vector<long> partial(4000);
  pool.parallel_for(0, partial.size(),
                    [&](std::size_t i) { partial[i] = static_cast<long>(i); });
  const long sum = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(sum, 4000L * 3999L / 2);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 50) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, OversizedCallableTakesBoxedPath) {
  // Callables beyond the inline task-slot buffer fall back to a heap box;
  // results and exception plumbing must be identical.
  ThreadPool pool(2);
  std::array<char, 256> payload{};
  payload.fill(7);
  std::atomic<int> sum{0};
  auto fut = pool.submit([payload, &sum] {
    int s = 0;
    for (const char c : payload) s += c;
    sum.store(s);
  });
  fut.get();
  EXPECT_EQ(sum.load(), 256 * 7);

  auto thrower = pool.submit([payload] {
    (void)payload;
    throw std::runtime_error("boxed boom");
  });
  EXPECT_THROW(thrower.get(), std::runtime_error);
}

TEST(ThreadPool, RingBackpressureBlocksUntilSpaceThenRunsEverything) {
  // Many more tasks than ring slots: submit() must block (not drop, not
  // grow) until workers free slots, and every task must still run.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  futs.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 5000);
}

TEST(ThreadPool, ParallelForRunsAllChunksEvenWhenOneThrows) {
  // The join must wait for every chunk before rethrowing — the chunk
  // callbacks reference the caller's stack frame. Throwing at the global
  // last index means every index was visited despite the exception.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  try {
    pool.parallel_for(0, hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == hits.size() - 1) throw std::runtime_error("last item");
    });
    FAIL() << "expected the chunk exception to propagate";
  } catch (const std::runtime_error&) {
  }
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    // Destructor must join without losing queued work being processed or
    // deadlocking. (Queued tasks may or may not all run; just no crash.)
  }
  SUCCEED();
}

}  // namespace
}  // namespace rups::util
