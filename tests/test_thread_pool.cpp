#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rups::util {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.submit([&] { counter.fetch_add(1); });
  fut.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    n.fetch_add(1);
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, ParallelForReduction) {
  ThreadPool pool(4);
  std::vector<long> partial(4000);
  pool.parallel_for(0, partial.size(),
                    [&](std::size_t i) { partial[i] = static_cast<long>(i); });
  const long sum = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(sum, 4000L * 3999L / 2);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 50) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    // Destructor must join without losing queued work being processed or
    // deadlocking. (Queued tasks may or may not all run; just no crash.)
  }
  SUCCEED();
}

}  // namespace
}  // namespace rups::util
