// Flight recorder: ring semantics, JSON bundles, and above all thread
// safety — N writers appending while a reader snapshots and dumps must
// never tear an event, exceed capacity, or reorder one thread's events.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/json.hpp"

namespace rups {
namespace {

namespace fs = std::filesystem;

fs::path fresh_temp_dir(const char* tag) {
  const fs::path dir =
      fs::temp_directory_path() / (std::string("rups_recorder_") + tag);
  fs::remove_all(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(FlightRecorder, RecordsInOrderAndBoundsCapacity) {
  obs::FlightRecorder rec(4);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_TRUE(rec.recent().empty());

  for (int i = 0; i < 3; ++i) {
    rec.record(obs::EventType::kSeekStarted, "t", i);
  }
  auto events = rec.recent();
  ASSERT_EQ(events.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].v0, i);
    EXPECT_EQ(events[i].seq, static_cast<std::uint64_t>(i));
  }

  // Overflow: the oldest events are overwritten, order is preserved.
  for (int i = 3; i < 10; ++i) {
    rec.record(obs::EventType::kSeekStarted, "t", i);
  }
  events = rec.recent();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].v0, 6.0 + static_cast<double>(i));
  }
  EXPECT_EQ(rec.total_recorded(), 10u);

  rec.clear();
  EXPECT_TRUE(rec.recent().empty());
  EXPECT_EQ(rec.total_recorded(), 10u);  // clear drops events, not history

  rec.set_capacity(2);
  rec.record(obs::EventType::kAnomaly, "t");
  EXPECT_EQ(rec.capacity(), 2u);
  EXPECT_EQ(rec.recent().size(), 1u);
}

TEST(FlightRecorder, EventTypeNamesAreStableAndDistinct) {
  const obs::EventType all[] = {
      obs::EventType::kSeekStarted,     obs::EventType::kSeekAccepted,
      obs::EventType::kSeekRejected,    obs::EventType::kEstimateEmitted,
      obs::EventType::kEstimateMissing, obs::EventType::kEstimateChecked,
      obs::EventType::kExchangeSent,    obs::EventType::kExchangeReceived,
      obs::EventType::kAnomaly};
  std::map<std::string, int> seen;
  for (const auto type : all) ++seen[obs::event_type_name(type)];
  EXPECT_EQ(seen.size(), std::size(all));
  EXPECT_EQ(seen.count("seek_rejected"), 1u);
  EXPECT_EQ(seen.count("anomaly"), 1u);
}

TEST(FlightRecorder, EventsToJsonIsParseable) {
  EXPECT_EQ(obs::events_to_json({}), "[]");

  obs::FlightRecorder rec(8);
  rec.record(obs::EventType::kSeekAccepted, "syn.seek", 1.5, 100.0, 0.8);
  rec.record(obs::EventType::kExchangeSent, "v2v.exchange", 1024.0, 3.0);
  const auto doc = util::JsonValue::parse(obs::events_to_json(rec.recent()));
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.as_array().size(), 2u);
  const auto& first = doc.as_array()[0];
  EXPECT_EQ(first.string_or("type", ""), "seek_accepted");
  EXPECT_EQ(first.string_or("label", ""), "syn.seek");
  const auto& v = first.find("v")->as_array();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0].as_number(), 1.5);
  EXPECT_DOUBLE_EQ(v[2].as_number(), 0.8);
}

TEST(FlightRecorder, AnomalyDumpsDiagnosticsBundle) {
  const fs::path dir = fresh_temp_dir("bundle");
  obs::FlightRecorder rec(16);
  rec.set_dump_dir(dir);
  rec.set_config_text("{\"campaign\": 42}");
  rec.record(obs::EventType::kSeekRejected, "syn.below_threshold", 0.3, 100.0,
             0.7);

  const fs::path bundle = rec.anomaly("test.trigger", "synthetic fault");
  ASSERT_FALSE(bundle.empty());
  ASSERT_TRUE(fs::exists(bundle));
  EXPECT_EQ(rec.anomalies(), 1u);

  const auto doc = util::JsonValue::parse(slurp(bundle));
  EXPECT_EQ(doc.string_or("kind", ""), "rups_diagnostics_bundle");
  EXPECT_EQ(doc.string_or("anomaly", ""), "test.trigger");
  EXPECT_EQ(doc.string_or("detail", ""), "synthetic fault");
  EXPECT_DOUBLE_EQ(doc.find("config")->number_or("campaign", 0.0), 42.0);
  ASSERT_NE(doc.find("metrics"), nullptr);
  ASSERT_NE(doc.find("events"), nullptr);
  const auto& events = doc.find("events")->as_array();
  ASSERT_GE(events.size(), 2u);  // the rejection + the anomaly marker
  EXPECT_EQ(events[0].string_or("type", ""), "seek_rejected");
  EXPECT_EQ(events.back().string_or("type", ""), "anomaly");

  fs::remove_all(dir);
}

TEST(FlightRecorder, DumpBudgetAndDisabledDir) {
  // No dump dir: anomalies are counted and recorded, nothing is written.
  obs::FlightRecorder quiet(8);
  EXPECT_TRUE(quiet.anomaly("a", "no dir").empty());
  EXPECT_EQ(quiet.anomalies(), 1u);
  ASSERT_EQ(quiet.recent().size(), 1u);
  EXPECT_EQ(quiet.recent()[0].type, obs::EventType::kAnomaly);

  // Dump budget: an anomaly storm writes at most max_dumps bundles.
  const fs::path dir = fresh_temp_dir("budget");
  obs::FlightRecorder rec(8);
  rec.set_dump_dir(dir);
  rec.set_max_dumps(2);
  EXPECT_FALSE(rec.anomaly("a", "1").empty());
  EXPECT_FALSE(rec.anomaly("a", "2").empty());
  EXPECT_TRUE(rec.anomaly("a", "3").empty());
  EXPECT_EQ(rec.anomalies(), 3u);
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir)) ++files;
  EXPECT_EQ(files, 2u);
  fs::remove_all(dir);
}

// The tier-1 concurrency contract: writers on N threads, a reader thread
// snapshotting and dumping throughout. Each writer i emits payloads
// (v0=k, v1=2k, v2=3k) with its own label; any torn event breaks the
// v1/v2 invariant, any per-thread reorder breaks monotonicity of v0.
TEST(FlightRecorder, ConcurrentAppendSnapshotAndDump) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 4000;
  constexpr std::size_t kCapacity = 512;
  static const char* kLabels[kThreads] = {"w0", "w1", "w2", "w3"};

  const fs::path dir = fresh_temp_dir("concurrent");
  obs::FlightRecorder rec(kCapacity);
  rec.set_dump_dir(dir);
  rec.set_max_dumps(4);

  std::atomic<bool> start{false};
  std::atomic<std::size_t> writers_done{0};

  const auto verify_snapshot = [&](const std::vector<obs::RecorderEvent>& ev) {
    ASSERT_LE(ev.size(), kCapacity);
    std::uint64_t last_seq = 0;
    bool have_seq = false;
    std::map<std::string, double> last_v0;
    for (const auto& e : ev) {
      if (have_seq) ASSERT_GT(e.seq, last_seq);  // global order, no dupes
      last_seq = e.seq;
      have_seq = true;
      const std::string label = e.label;
      if (label.rfind("w", 0) != 0) continue;  // anomaly markers
      ASSERT_DOUBLE_EQ(e.v1, 2.0 * e.v0) << "torn event payload";
      ASSERT_DOUBLE_EQ(e.v2, 3.0 * e.v0) << "torn event payload";
      const auto it = last_v0.find(label);
      if (it != last_v0.end()) {
        ASSERT_GT(e.v0, it->second) << "thread " << label << " reordered";
      }
      last_v0[label] = e.v0;
    }
  };

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      while (!start.load()) std::this_thread::yield();
      for (std::size_t k = 0; k < kPerThread; ++k) {
        const auto v = static_cast<double>(k);
        rec.record(obs::EventType::kSeekStarted, kLabels[t], v, 2.0 * v,
                   3.0 * v);
      }
      writers_done.fetch_add(1);
    });
  }

  std::thread reader([&] {
    while (!start.load()) std::this_thread::yield();
    std::size_t dumps = 0;
    // On a single-core host the writers may finish before this thread is
    // scheduled; the do/while still guarantees both dumps happen.
    do {
      verify_snapshot(rec.recent());
      if (dumps < 2) {
        (void)rec.anomaly("test.concurrent", "mid-flight dump");
        ++dumps;
      }
    } while (writers_done.load() < kThreads || dumps < 2);
  });

  start.store(true);
  for (auto& w : writers) w.join();
  reader.join();

  // Final state: every event accounted for, ring bounded, order intact.
  const auto final_events = rec.recent();
  verify_snapshot(final_events);
  EXPECT_EQ(final_events.size(), kCapacity);
  EXPECT_GE(rec.total_recorded(), kThreads * kPerThread);

  // Mid-flight bundles parse and respect the capacity bound too.
  std::size_t bundles = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto doc = util::JsonValue::parse(slurp(entry.path()));
    EXPECT_EQ(doc.string_or("kind", ""), "rups_diagnostics_bundle");
    EXPECT_LE(doc.find("events")->as_array().size(), kCapacity);
    ++bundles;
  }
  EXPECT_EQ(bundles, 2u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace rups
