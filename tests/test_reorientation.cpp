#include "core/reorientation.hpp"

#include <gtest/gtest.h>

#include "sensors/imu.hpp"
#include "util/rng.hpp"

namespace rups::core {
namespace {

/// Drives a synthetic accelerate/brake cycle through an ImuModel and feeds
/// the reorientation estimator, returning the estimated rotation.
Reorientation run_calibration(sensors::ImuModel& imu, int cycles = 30) {
  Reorientation reo;
  vehicle::VehicleState state;
  double t = 0.0;
  const double dt = 0.005;  // 200 Hz
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // 3 s accelerate at 2 m/s^2, 2 s coast, 3 s brake at -2 m/s^2, 2 s coast.
    for (int phase = 0; phase < 4; ++phase) {
      const bool coast = (phase % 2) == 1;
      const double a = coast ? 0.0 : (phase == 0 ? 2.0 : -2.0);
      const int trend = coast ? 0 : (a > 0 ? 1 : -1);
      const int steps = coast ? 400 : 600;
      for (int i = 0; i < steps; ++i) {
        state.time_s = t;
        state.accel_mps2 = a;
        state.speed_mps = std::max(0.0, state.speed_mps + a * dt);
        reo.add_sample(imu.sample(state, 0.0), trend);
        t += dt;
      }
    }
  }
  return reo;
}

TEST(Reorientation, UncalibratedIsIdentity) {
  Reorientation reo;
  EXPECT_FALSE(reo.calibrated());
  EXPECT_LT(reo.rotation().distance(util::Mat3::identity()), 1e-12);
}

TEST(Reorientation, RecoversMountRotation) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    sensors::ImuModel imu(seed);
    Reorientation reo = run_calibration(imu);
    ASSERT_TRUE(reo.calibrated()) << "seed " << seed;
    // rotation() maps sensor->vehicle; mount maps vehicle->sensor.
    // Their product must be near identity.
    const util::Mat3 composed = reo.rotation() * imu.mount();
    EXPECT_LT(composed.distance(util::Mat3::identity()), 0.15)
        << "seed " << seed;
  }
}

TEST(Reorientation, EstimatedRotationIsOrthonormal) {
  sensors::ImuModel imu(3);
  Reorientation reo = run_calibration(imu);
  ASSERT_TRUE(reo.calibrated());
  const util::Mat3 r = reo.rotation();
  EXPECT_LT((r * r.transpose()).distance(util::Mat3::identity()), 1e-9);
}

TEST(Reorientation, GravityDirectionRecovered) {
  sensors::ImuModel imu(4);
  Reorientation reo = run_calibration(imu);
  const util::Vec3 expected =
      (imu.mount() * util::Vec3{0, 0, 1}).normalized();
  EXPECT_GT(reo.gravity_sensor().dot(expected), 0.995);
}

TEST(Reorientation, IgnoresEventsWithoutSpeedTrend) {
  sensors::ImuModel imu(5);
  Reorientation reo;
  vehicle::VehicleState state;
  state.accel_mps2 = 2.0;
  state.speed_mps = 10.0;
  for (int i = 0; i < 5000; ++i) {
    state.time_s = i * 0.005;
    reo.add_sample(imu.sample(state, 0.0), /*speed_trend=*/0);
  }
  EXPECT_EQ(reo.event_count(), 0u);
  EXPECT_FALSE(reo.calibrated());
}

TEST(Reorientation, IgnoresTurns) {
  sensors::ImuModel::Config cfg;
  cfg.gyro_noise_rps = 0.0;
  cfg.gyro_bias = {};
  sensors::ImuModel imu(6, cfg);
  Reorientation reo;
  vehicle::VehicleState state;
  state.accel_mps2 = 2.0;
  state.speed_mps = 10.0;
  for (int i = 0; i < 5000; ++i) {
    state.time_s = i * 0.005;
    // Strong yaw rate: events must be rejected even with a trend hint.
    reo.add_sample(imu.sample(state, 0.4), 1);
  }
  EXPECT_EQ(reo.event_count(), 0u);
}

TEST(Reorientation, BrakingEventsVoteConsistently) {
  // Calibration using ONLY braking events (coast in between for the gravity
  // gate) must converge to the same frame.
  sensors::ImuModel imu(8);
  Reorientation reo;
  vehicle::VehicleState state;
  double t = 0.0;
  for (int cycle = 0; cycle < 40; ++cycle) {
    for (int phase = 0; phase < 2; ++phase) {
      const bool coast = phase == 0;
      for (int i = 0; i < 400; ++i) {
        state.time_s = t;
        state.accel_mps2 = coast ? 0.0 : -2.0;
        state.speed_mps = 15.0;
        reo.add_sample(imu.sample(state, 0.0), coast ? 0 : -1);
        t += 0.005;
      }
    }
  }
  ASSERT_TRUE(reo.calibrated());
  const util::Mat3 composed = reo.rotation() * imu.mount();
  EXPECT_LT(composed.distance(util::Mat3::identity()), 0.15);
}

TEST(Reorientation, SlopeRecalibrationKeepsFrameOrthogonal) {
  // Inject a gravity estimate that is slightly off (slope): z = x cross y
  // must still produce an orthonormal frame.
  sensors::ImuModel imu(9);
  Reorientation reo = run_calibration(imu, 10);
  ASSERT_TRUE(reo.calibrated());
  const util::Mat3 r = reo.rotation();
  const util::Vec3 x = r.row(0), y = r.row(1), z = r.row(2);
  EXPECT_NEAR(x.dot(y), 0.0, 1e-9);
  EXPECT_NEAR(y.dot(z), 0.0, 1e-9);
  EXPECT_NEAR(x.cross(y).dot(z), 1.0, 1e-9);  // right-handed
}

}  // namespace
}  // namespace rups::core
