#include "core/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "core/packed.hpp"
#include "core/syn_seeker.hpp"
#include "core/types.hpp"
#include "util/hash_noise.hpp"
#include "util/rng.hpp"

// The quantized kernel's correctness harness (DESIGN §15):
//   * differential sweep — randomized windows/strides/masks/k at both
//     integer widths against the float kernel, with the score-error bound
//     asserted and the integer accept/reject decisions (overlap,
//     min_channels) required to match EXACTLY;
//   * determinism — quantized batch/multi calls are memcmp-bit-identical
//     to per-position quantized_correlation at any batch shape or stride
//     (the quant analogue of test_packed_batch's float contract);
//   * property suite — quantization round-trip within step/2, exact score
//     invariance under a dBm offset of the whole fleet, and argmax
//     stability under sub-LSB input perturbation;
//   * paper-point gate — at m=1000/w=100/k=45/10% mask the SYN estimate
//     (matched indices and window) is identical at kFloat32, kInt16 and
//     kInt8, end to end through SynSeeker.

namespace rups::core {
namespace {

// Asserted differential bounds on the eq.(2) score scale [-2, 2]. DESIGN
// §15 derives the first-order bound ~4(1+|r|)·(step/2)/sigma_min per
// Pearson term; the measured sweep maxima are ~4e-4 (int16) and ~3.5e-3
// (int8) at the paper point, and these constants keep an order-of-magnitude
// margin for the adversarial shapes below (short windows, heavy masks).
constexpr double kScoreBound16 = 2e-2;
constexpr double kScoreBound8 = 1.5e-1;

ContextTrajectory random_context(util::Rng& rng, std::size_t metres,
                                 std::size_t channels, double usable_fraction,
                                 double grid = 0.0) {
  ContextTrajectory t(channels, metres);
  for (std::size_t i = 0; i < metres; ++i) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if (rng.uniform() > usable_fraction) continue;
      double dbm = -110.0 + 60.0 * rng.uniform();
      if (grid > 0.0) dbm = std::round(dbm / grid) * grid;
      pv.set(c, static_cast<float>(dbm));
    }
    t.append(GeoSample{}, std::move(pv));
  }
  return t;
}

std::vector<std::size_t> identity_rows(std::size_t k) {
  std::vector<std::size_t> rows(k);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return rows;
}

/// Float + both quantized widths of one trajectory stretch.
struct Operand {
  SubsetPack pack;
  QuantizedPack q16;
  QuantizedPack q8;
  std::vector<std::size_t> rows;

  Operand(const ContextTrajectory& t, std::size_t channels, std::size_t from,
          std::size_t len)
      : rows(identity_rows(channels)) {
    std::vector<std::size_t> ids(channels);
    std::iota(ids.begin(), ids.end(), std::size_t{0});
    pack = SubsetPack(t, ids, from, len);
    q16.build(pack.span(), QuantBits::kInt16);
    q8.build(pack.span(), QuantBits::kInt8);
  }

  [[nodiscard]] PackedView fview() const { return {pack.span(), rows}; }
  [[nodiscard]] QuantView16 v16() const { return {q16.span16(), rows}; }
  [[nodiscard]] QuantView8 v8() const { return {q8.span8(), rows}; }
};

void expect_bit_equal(double want, double got, const char* what,
                      std::size_t q) {
  EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0)
      << what << " lane " << q << ": want " << want << " got " << got;
}

TEST(QuantKernel, DifferentialSweepVsFloat) {
  util::Rng rng(515);
  const TrajectoryCorrelationConfig config{};
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t channels =
        8 + static_cast<std::size_t>(rng.uniform() * 32.0);
    const std::size_t window =
        17 + static_cast<std::size_t>(rng.uniform() * 100.0);
    const std::size_t stride =
        1 + static_cast<std::size_t>(rng.uniform() * 4.0);
    const double usable = 0.55 + 0.4 * rng.uniform();
    const std::size_t metres = window + 70;
    const auto fixed_t = random_context(rng, window, channels, usable);
    const auto slide_t = random_context(rng, metres, channels, usable);
    const Operand fixed(fixed_t, channels, 0, window);
    const Operand slide(slide_t, channels, 0, metres);

    const std::size_t pos_count = (metres - window) / stride + 1;
    std::vector<double> f(pos_count), s16(pos_count), s8(pos_count);
    packed_correlation_batch(fixed.fview(), 0, slide.fview(), 0, pos_count,
                             window, config, f.data(), stride);
    quantized_correlation_batch<std::int16_t>(fixed.v16(), 0, slide.v16(), 0,
                                              pos_count, window, config,
                                              s16.data(), stride);
    quantized_correlation_batch<std::int8_t>(fixed.v8(), 0, slide.v8(), 0,
                                             pos_count, window, config,
                                             s8.data(), stride);
    for (std::size_t q = 0; q < pos_count; ++q) {
      // Overlap and min_channels decisions are exact integer counts on the
      // shared masks — the "no score" sentinel must agree exactly.
      EXPECT_EQ(f[q] == -2.0, s16[q] == -2.0) << "trial " << trial;
      EXPECT_EQ(f[q] == -2.0, s8[q] == -2.0) << "trial " << trial;
      if (f[q] == -2.0) continue;
      EXPECT_NEAR(f[q], s16[q], kScoreBound16)
          << "int16 trial " << trial << " pos " << q;
      EXPECT_NEAR(f[q], s8[q], kScoreBound8)
          << "int8 trial " << trial << " pos " << q;
    }
  }
}

template <typename T>
void expect_batch_matches_scalar(const QuantViewT<T>& fixed,
                                 const QuantViewT<T>& sliding,
                                 std::size_t pos_lo, std::size_t pos_count,
                                 std::size_t window, std::size_t stride,
                                 const TrajectoryCorrelationConfig& config,
                                 const char* what) {
  std::vector<double> got(pos_count, 0.0);
  quantized_correlation_batch<T>(fixed, 0, sliding, pos_lo, pos_count, window,
                                 config, got.data(), stride);
  for (std::size_t q = 0; q < pos_count; ++q) {
    const double want = quantized_correlation<T>(
        fixed, 0, sliding, pos_lo + q * stride, window, config);
    expect_bit_equal(want, got[q], what, q);
  }
}

TEST(QuantKernel, BatchMatchesPerPositionBitExact) {
  util::Rng rng(9090);
  const TrajectoryCorrelationConfig config{};
  for (int trial = 0; trial < 16; ++trial) {
    const std::size_t channels =
        6 + static_cast<std::size_t>(rng.uniform() * 30.0);
    const std::size_t window =
        16 + static_cast<std::size_t>(rng.uniform() * 90.0);
    const std::size_t stride =
        1 + static_cast<std::size_t>(rng.uniform() * 4.0);
    const double usable = 0.4 + 0.55 * rng.uniform();
    // Batch shapes around the block boundary: below, at, above, multi-block
    // with remainder — each must reduce to identical per-position scores.
    const std::size_t shapes[] = {1,
                                  kLagBlock - 1,
                                  kLagBlock,
                                  kLagBlock + 1,
                                  2 * kLagBlock,
                                  2 * kLagBlock + 5};
    const std::size_t pos_count = shapes[trial % 6];
    const std::size_t pos_lo = static_cast<std::size_t>(rng.uniform() * 7.0);
    const std::size_t metres =
        pos_lo + (pos_count - 1) * stride + window + 3;
    const auto fixed_t = random_context(rng, window, channels, usable);
    const auto slide_t = random_context(rng, metres, channels, usable);
    const Operand fixed(fixed_t, channels, 0, window);
    const Operand slide(slide_t, channels, 0, metres);
    expect_batch_matches_scalar<std::int16_t>(fixed.v16(), slide.v16(),
                                              pos_lo, pos_count, window,
                                              stride, config, "int16");
    expect_batch_matches_scalar<std::int8_t>(fixed.v8(), slide.v8(), pos_lo,
                                             pos_count, window, stride,
                                             config, "int8");
  }
}

TEST(QuantKernel, MultiMatchesIndependentBatches) {
  util::Rng rng(77);
  const TrajectoryCorrelationConfig config{};
  const std::size_t channels = 24;
  const std::size_t window = 60;
  const auto fixed_t = random_context(rng, window, channels, 0.9);
  const Operand fixed(fixed_t, channels, 0, window);
  std::vector<ContextTrajectory> slide_ts;
  std::vector<Operand> slides;
  const std::size_t lens[] = {window + 40, window + 21, window + 64};
  for (std::size_t len : lens) {
    slide_ts.push_back(random_context(rng, len, channels, 0.85));
    slides.emplace_back(slide_ts.back(), channels, 0, len);
  }
  std::vector<std::vector<double>> multi_out(3);
  std::vector<std::vector<double>> solo_out(3);
  std::vector<QuantScanTask16> tasks;
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t count = lens[i] - window + 1;
    multi_out[i].assign(count, 0.0);
    solo_out[i].assign(count, 0.0);
    tasks.push_back({slides[i].v16(), 0, count, 1, multi_out[i].data()});
  }
  quantized_correlation_multi<std::int16_t>(fixed.v16(), 0, tasks, window,
                                            config);
  for (std::size_t i = 0; i < 3; ++i) {
    quantized_correlation_batch<std::int16_t>(fixed.v16(), 0, slides[i].v16(),
                                              0, multi_out[i].size(), window,
                                              config, solo_out[i].data());
    for (std::size_t q = 0; q < multi_out[i].size(); ++q) {
      expect_bit_equal(solo_out[i][q], multi_out[i][q], "multi", q);
    }
  }
}

TEST(QuantKernel, RoundTripWithinHalfStep) {
  util::Rng rng(4242);
  const std::size_t channels = 20;
  const std::size_t metres = 150;
  const auto t = random_context(rng, metres, channels, 0.8);
  const Operand op(t, channels, 0, metres);
  const PackedSpan fs = op.pack.span();
  for (auto [bits, qmax] :
       {std::pair{QuantBits::kInt16, kQuantMax16},
        std::pair{QuantBits::kInt8, kQuantMax8}}) {
    const bool wide = bits == QuantBits::kInt16;
    const QuantParams& params = wide ? op.q16.params() : op.q8.params();
    ASSERT_TRUE(std::isfinite(params.offset));
    ASSERT_GT(params.step, 0.0);
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < metres; ++i) {
        const float x = fs.x[c * fs.stride + i];
        const float fv = fs.v[c * fs.stride + i];
        const std::size_t qstride =
            wide ? op.q16.span16().stride : op.q8.span8().stride;
        const int q = wide ? op.q16.span16().q[c * qstride + i]
                           : op.q8.span8().q[c * qstride + i];
        const int v = wide ? op.q16.span16().v[c * qstride + i]
                           : op.q8.span8().v[c * qstride + i];
        EXPECT_EQ(v, fv != 0.0f ? 1 : 0);
        EXPECT_LE(std::abs(q), qmax);
        if (fv == 0.0f) {
          EXPECT_EQ(q, 0);
          continue;
        }
        const double back = params.offset + q * params.step;
        EXPECT_LE(std::abs(back - static_cast<double>(x)),
                  params.step * 0.5 + 1e-9)
            << "channel " << c << " metre " << i;
      }
    }
  }
}

TEST(QuantKernel, DbmOffsetInvarianceExact) {
  // Input values snapped to a 1/64 dB grid so that the +8 dB fleet-wide
  // shift is exact in float; the quantizer's affine params must then absorb
  // the shift exactly (offset moves by 8, step unchanged), making every
  // quantized value — and therefore every score — bitwise identical.
  util::Rng rng(606);
  const std::size_t channels = 30;
  const std::size_t window = 64;
  const std::size_t metres = 180;
  const double delta = 8.0;
  ContextTrajectory base_f = random_context(rng, window, channels, 0.9,
                                            1.0 / 64.0);
  ContextTrajectory base_s = random_context(rng, metres, channels, 0.9,
                                            1.0 / 64.0);
  const auto shift = [&](const ContextTrajectory& t,
                         std::size_t len) {
    ContextTrajectory out(channels, len);
    for (std::size_t i = 0; i < len; ++i) {
      PowerVector pv(channels);
      for (std::size_t c = 0; c < channels; ++c) {
        if (!t.power(i).usable(c)) continue;
        pv.set(c, static_cast<float>(static_cast<double>(t.power(i).at(c)) + delta));
      }
      out.append(GeoSample{}, std::move(pv));
    }
    return out;
  };
  const ContextTrajectory shifted_f = shift(base_f, window);
  const ContextTrajectory shifted_s = shift(base_s, metres);
  const Operand f0(base_f, channels, 0, window);
  const Operand s0(base_s, channels, 0, metres);
  const Operand f1(shifted_f, channels, 0, window);
  const Operand s1(shifted_s, channels, 0, metres);
  EXPECT_EQ(f1.q16.params().step, f0.q16.params().step);
  EXPECT_EQ(f1.q16.params().offset, f0.q16.params().offset + delta);
  const TrajectoryCorrelationConfig config{};
  const std::size_t pos_count = metres - window + 1;
  std::vector<double> a(pos_count), b(pos_count);
  quantized_correlation_batch<std::int16_t>(f0.v16(), 0, s0.v16(), 0,
                                            pos_count, window, config,
                                            a.data());
  quantized_correlation_batch<std::int16_t>(f1.v16(), 0, s1.v16(), 0,
                                            pos_count, window, config,
                                            b.data());
  for (std::size_t q = 0; q < pos_count; ++q) {
    expect_bit_equal(a[q], b[q], "dbm-offset int16", q);
  }
  quantized_correlation_batch<std::int8_t>(f0.v8(), 0, s0.v8(), 0, pos_count,
                                           window, config, a.data());
  quantized_correlation_batch<std::int8_t>(f1.v8(), 0, s1.v8(), 0, pos_count,
                                           window, config, b.data());
  for (std::size_t q = 0; q < pos_count; ++q) {
    expect_bit_equal(a[q], b[q], "dbm-offset int8", q);
  }
}

TEST(QuantKernel, ArgmaxStableUnderSubLsbPerturbation) {
  // fixed is an exact sub-window of sliding, so the true peak is a sharp
  // perfect-correlation spike; perturbing every input by less than one
  // quantization LSB must not move the argmax.
  util::Rng rng(31337);
  const std::size_t channels = 32;
  const std::size_t window = 80;
  const std::size_t metres = 400;
  const std::size_t true_pos = 211;
  const auto slide_t = random_context(rng, metres, channels, 0.9);
  ContextTrajectory fixed_t(channels, window);
  for (std::size_t i = 0; i < window; ++i) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if (!slide_t.power(true_pos + i).usable(c)) continue;
      pv.set(c, static_cast<float>(static_cast<double>(slide_t.power(true_pos + i).at(c))));
    }
    fixed_t.append(GeoSample{}, std::move(pv));
  }
  const Operand fixed(fixed_t, channels, 0, window);
  const Operand slide(slide_t, channels, 0, metres);
  const double step16 = fixed.q16.params().step;
  const TrajectoryCorrelationConfig config{};
  const std::size_t pos_count = metres - window + 1;
  std::vector<double> scores(pos_count);

  const auto argmax = [&](const std::vector<double>& s) {
    std::size_t best = 0;
    for (std::size_t q = 1; q < s.size(); ++q) {
      if (s[q] > s[best]) best = q;
    }
    return best;
  };

  quantized_correlation_batch<std::int16_t>(fixed.v16(), 0, slide.v16(), 0,
                                            pos_count, window, config,
                                            scores.data());
  ASSERT_EQ(argmax(scores), true_pos);

  for (int rep = 0; rep < 5; ++rep) {
    ContextTrajectory noisy(channels, window);
    for (std::size_t i = 0; i < window; ++i) {
      PowerVector pv(channels);
      for (std::size_t c = 0; c < channels; ++c) {
        if (!fixed_t.power(i).usable(c)) continue;
        const double jitter = (rng.uniform() - 0.5) * step16;  // < ±LSB/2
        pv.set(c, static_cast<float>(
                      static_cast<double>(fixed_t.power(i).at(c)) + jitter));
      }
      noisy.append(GeoSample{}, std::move(pv));
    }
    const Operand noisy_f(noisy, channels, 0, window);
    quantized_correlation_batch<std::int16_t>(noisy_f.v16(), 0, slide.v16(),
                                              0, pos_count, window, config,
                                              scores.data());
    EXPECT_EQ(argmax(scores), true_pos) << "rep " << rep;
  }
}

TEST(QuantKernel, WindowCapEnforced) {
  util::Rng rng(12);
  const std::size_t channels = 4;
  const std::size_t metres = kQuantMaxWindowM + 10;
  const auto t = random_context(rng, metres, channels, 1.0);
  const Operand op(t, channels, 0, metres);
  const TrajectoryCorrelationConfig config{};
  double out = 0.0;
  EXPECT_THROW(quantized_correlation_batch<std::int16_t>(
                   op.v16(), 0, op.v16(), 0, 1, kQuantMaxWindowM + 1, config,
                   &out),
               std::invalid_argument);
}

/// Synthetic road field shared with test_syn_seeker: deterministic RSSI
/// per (road metre, channel) with structure on both axes.
float road_rssi(std::uint64_t road_seed, std::int64_t metre, std::size_t ch) {
  const util::HashNoise chan_noise(road_seed ^ 0xABCDULL);
  const util::LatticeField1D spatial(
      util::hash_combine(road_seed, static_cast<std::uint64_t>(ch)), 8.0, 2);
  const double base =
      -95.0 + 40.0 * chan_noise.uniform(static_cast<std::int64_t>(ch));
  return static_cast<float>(base +
                            6.0 * spatial.value(static_cast<double>(metre)));
}

ContextTrajectory drive(std::uint64_t road_seed, std::int64_t road_start,
                        std::size_t len, std::size_t channels, double sigma,
                        double usable_fraction, std::uint64_t noise_seed) {
  ContextTrajectory traj(channels, len);
  util::Rng rng(noise_seed);
  for (std::size_t i = 0; i < len; ++i) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if (rng.uniform() > usable_fraction) continue;
      pv.set(c, road_rssi(road_seed, road_start + static_cast<std::int64_t>(i),
                          c) +
                    static_cast<float>(rng.gaussian(0.0, sigma)));
    }
    traj.append(GeoSample{0.0, static_cast<double>(i)}, std::move(pv));
  }
  return traj;
}

TEST(QuantKernel, PaperPointEstimateIdenticalAcrossPrecisions) {
  // The ctest gate from ISSUE 8: at the paper point (m=1000, w=100, k=45,
  // 10% masked) the SYN estimate — matched indices and window, i.e. the
  // quantity that becomes the relative-distance fix — must be identical at
  // kFloat32, kInt16 and kInt8, end to end through SynSeeker::find.
  const std::size_t m = 1000;
  const auto a = drive(99, 0, m, 45, 0.4, 0.9, 21);
  const auto b = drive(99, 137, m, 45, 0.4, 0.9, 22);
  SynConfig cfg;
  cfg.window_m = 100;
  cfg.top_channels = 45;

  std::vector<std::vector<SynPoint>> results;
  for (KernelPrecision prec : {KernelPrecision::kFloat32,
                               KernelPrecision::kInt16,
                               KernelPrecision::kInt8}) {
    cfg.precision = prec;
    results.push_back(SynSeeker(cfg).find(a, b));
  }
  ASSERT_FALSE(results[0].empty());
  for (std::size_t p = 1; p < results.size(); ++p) {
    ASSERT_EQ(results[p].size(), results[0].size()) << "precision " << p;
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      EXPECT_EQ(results[p][i].index_a, results[0][i].index_a);
      EXPECT_EQ(results[p][i].index_b, results[0][i].index_b);
      EXPECT_EQ(results[p][i].window_m, results[0][i].window_m);
      EXPECT_NEAR(results[p][i].correlation, results[0][i].correlation,
                  p == 1 ? kScoreBound16 : kScoreBound8);
    }
  }
}

TEST(QuantKernel, SeekerPackedAndFallbackPathsAgree) {
  // The quantized seek must produce the same SYN point whether it runs on
  // caller-maintained mirrors (PackedContext + QuantizedPack), on a bare
  // PackedContext (scratch quantization of the full pack), or on the
  // SubsetPack fallback (scratch quantization of the per-pass subsets).
  // Scores may differ between pack/subset routes (different quantization
  // grids), but each route must clear the threshold and land on the same
  // alignment.
  const auto a = drive(7, 0, 300, 30, 0.4, 0.9, 5);
  const auto b = drive(7, 60, 300, 30, 0.4, 0.9, 6);
  SynConfig cfg;
  cfg.window_m = 85;
  cfg.top_channels = 30;
  cfg.precision = KernelPrecision::kInt16;
  const SynSeeker seeker(cfg);

  PackedContext pa, pb;
  pa.sync(a);
  pb.sync(b);
  QuantizedPack qa, qb;
  qa.sync(pa, QuantBits::kInt16);
  qb.sync(pb, QuantBits::kInt16);

  const auto mirrored = seeker.find_one(a, b, 0, &pa, &pb, &qa, &qb);
  const auto packed_only = seeker.find_one(a, b, 0, &pa, &pb);
  const auto fallback = seeker.find_one(a, b, 0);
  ASSERT_TRUE(mirrored.has_value());
  ASSERT_TRUE(packed_only.has_value());
  ASSERT_TRUE(fallback.has_value());
  // Mirrored and packed-only quantize the same spans -> bit-identical.
  EXPECT_EQ(mirrored->index_a, packed_only->index_a);
  EXPECT_EQ(mirrored->index_b, packed_only->index_b);
  EXPECT_EQ(mirrored->correlation, packed_only->correlation);
  // The subset fallback quantizes narrower spans (different grid): same
  // alignment, score within the differential bound of itself.
  EXPECT_EQ(mirrored->index_a, fallback->index_a);
  EXPECT_EQ(mirrored->index_b, fallback->index_b);
  EXPECT_NEAR(mirrored->correlation, fallback->correlation,
              2.0 * kScoreBound16);
}

}  // namespace
}  // namespace rups::core
