// End-to-end observability: one small campaign must light up the cost
// metrics the paper reports in Sec. VI-E — SYN-search work, V2V
// communication bytes, per-query latency — and the snapshot must survive a
// JSON round trip (what bench binaries write under bench_out/).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/obs.hpp"
#include "sim/campaign.hpp"
#include "sim/convoy_sim.hpp"

namespace rups {
namespace {

sim::CampaignResult run_small_campaign() {
  sim::Scenario scenario =
      sim::Scenario::two_car(7, road::EnvironmentType::kFourLaneUrban);
  scenario.route_length_m = 6'000.0;
  sim::ConvoySimulation sim(scenario);
  sim::CampaignConfig cfg;
  cfg.max_queries = 5;
  cfg.model_v2v_cost = true;
  return sim::run_campaign(sim, cfg);
}

TEST(ObsPipeline, CampaignProducesCostMetrics) {
  const sim::CampaignResult result = run_small_campaign();
  ASSERT_FALSE(result.queries.empty());
  const obs::MetricsSnapshot& snap = result.metrics;

  // SYN-point search cost (Sec. V-A).
  const auto* windows = snap.counter("syn.windows_scanned");
  ASSERT_NE(windows, nullptr);
  EXPECT_GT(windows->value, 0u);
  const auto* seeks = snap.counter("syn.seeks");
  ASSERT_NE(seeks, nullptr);
  EXPECT_GE(seeks->value, result.queries.size());

  // V2V communication cost (Sec. V-B): full context + incremental tails.
  const auto* bytes = snap.counter("v2v.payload_bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_GT(bytes->value, 0u);
  const auto* messages = snap.counter("v2v.messages");
  ASSERT_NE(messages, nullptr);
  EXPECT_GE(messages->value, result.queries.size());

  // Simulation-side field evaluations and per-metre emissions.
  EXPECT_GT(snap.counter("gsm.field_evals")->value, 0u);
  EXPECT_GT(snap.counter("engine.metres_emitted")->value, 0u);
  EXPECT_GT(snap.counter("engine.imu_samples")->value, 0u);

  // Per-query latency histogram.
  const auto* latency = snap.histogram("campaign.query_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->count, result.queries.size());
  EXPECT_GT(latency->max, 0.0);

  // The snapshot serializes and parses losslessly.
  EXPECT_EQ(obs::MetricsSnapshot::from_json(snap.to_json()), snap);
}

TEST(ObsPipeline, V2vCostModelMatchesIdealizedEstimatesOnCleanChannel) {
  // With v2v modelling the rear vehicle estimates from the DECODED
  // receiver-side copy, so codec quantization (0.5 dB RSSI, ~3 mrad
  // heading) genuinely reaches SynSeeker. Over a clean channel the copy is
  // complete, so estimates must agree with the idealized sender-side search
  // to well under the paper's metre-level error budget — but no longer
  // bit-for-bit.
  sim::Scenario scenario =
      sim::Scenario::two_car(11, road::EnvironmentType::kFourLaneUrban);
  scenario.route_length_m = 6'000.0;
  sim::CampaignConfig cfg;
  cfg.max_queries = 3;

  cfg.model_v2v_cost = true;
  sim::ConvoySimulation sim_a(scenario);
  const auto with_v2v = sim::run_campaign(sim_a, cfg);

  cfg.model_v2v_cost = false;
  sim::ConvoySimulation sim_b(scenario);
  const auto without_v2v = sim::run_campaign(sim_b, cfg);

  // Everything was delivered: no failures, no degradation.
  EXPECT_EQ(with_v2v.health.exchanges, with_v2v.queries.size());
  EXPECT_DOUBLE_EQ(with_v2v.health.delivery_failure_rate, 0.0);
  EXPECT_DOUBLE_EQ(with_v2v.health.degraded_rate, 0.0);

  ASSERT_EQ(with_v2v.queries.size(), without_v2v.queries.size());
  std::size_t hits_a = 0, hits_b = 0, both = 0;
  for (std::size_t i = 0; i < with_v2v.queries.size(); ++i) {
    EXPECT_EQ(with_v2v.queries[i].truth, without_v2v.queries[i].truth);
    hits_a += with_v2v.queries[i].rups.has_value();
    hits_b += without_v2v.queries[i].rups.has_value();
    if (with_v2v.queries[i].rups.has_value() &&
        without_v2v.queries[i].rups.has_value()) {
      ++both;
      EXPECT_NEAR(with_v2v.queries[i].rups->distance_m,
                  without_v2v.queries[i].rups->distance_m, 2.0);
    }
  }
  // Quantization may flip a borderline query either way, but not all of
  // them, and most queries must resolve on both paths.
  EXPECT_LE(hits_a > hits_b ? hits_a - hits_b : hits_b - hits_a, 1u);
  EXPECT_GE(both + 1, with_v2v.queries.size());
}

TEST(ObsPipeline, ChromeTraceCapturesCampaignSpans) {
  const auto path =
      std::filesystem::temp_directory_path() / "rups_campaign_trace.json";
  std::uint64_t events = 0;
  {
    obs::ChromeTraceSink sink(path);
    obs::set_trace_sink(&sink);
    (void)run_small_campaign();
    obs::set_trace_sink(nullptr);
    events = sink.events_written();
  }
  EXPECT_GT(events, 0u);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"name\": \"syn.seek\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"campaign.query\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"v2v.exchange\""), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rups
