// Streaming determinism: feeding context one metre at a time through
// stream::StreamingEngine (warm SynCache re-verification on every update)
// must land on BIT-IDENTICAL estimates, at every checkpoint, to a cold
// batch reference that runs the full SYN search over the same trajectories
// — across seeds, and serial vs pooled. This is the §17 contract that lets
// the streaming path replace the round path without changing answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/fleet.hpp"
#include "sim/service_sim.hpp"
#include "stream/stream_engine.hpp"
#include "util/thread_pool.hpp"

namespace rups {
namespace {

constexpr std::size_t kNeighbours = 3;
constexpr std::size_t kRounds = 10;
constexpr std::size_t kWarmupRounds = 3;

sim::CityFleetConfig city_config(std::uint64_t seed) {
  sim::CityFleetConfig cfg;
  cfg.vehicles = kNeighbours + 1;
  cfg.channels = 24;
  cfg.context_capacity_m = 200;
  cfg.spacing_m = 18.0;
  cfg.seed = seed;
  return cfg;
}

/// One checkpoint = the per-neighbour estimate state at a round boundary.
struct Checkpoint {
  std::vector<bool> has;
  std::vector<double> distance_m;
  std::vector<double> confidence;
  std::vector<std::size_t> syn_count;

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

/// Overwrite `out` with the estimates this update carried. Merged across a
/// round's updates, each neighbour's entry ends up from its LAST update of
/// the round — which runs once both its view and the ego context hold the
/// complete round (vehicles with fewer metres this round stop growing
/// early, but keep being re-estimated while the ego grows).
void merge(const stream::StreamingEngine::Update& update,
           const std::vector<std::uint64_t>& ids, Checkpoint& out) {
  for (std::size_t j = 0; j < update.ids.size(); ++j) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (update.ids[j] != ids[i]) continue;
      const auto& nr = update.results[j];
      out.has[i] = nr.estimate.has_value();
      out.distance_m[i] = out.has[i] ? nr.estimate->distance_m : 0.0;
      out.confidence[i] = out.has[i] ? nr.estimate->confidence : 0.0;
      out.syn_count[i] = out.has[i] ? nr.estimate->syn_count : 0;
    }
  }
}

/// Drive a CityFleet per metre through a StreamingEngine in ideal ingest
/// mode; record a checkpoint at the end of every post-warmup round.
std::vector<Checkpoint> run_streaming(std::uint64_t seed,
                                      util::ThreadPool* pool) {
  const sim::CityFleetConfig ccfg = city_config(seed);
  sim::CityFleet city(ccfg);

  stream::StreamConfig scfg;
  scfg.fleet.rups.channels = ccfg.channels;
  scfg.fleet.rups.context_capacity_m = ccfg.context_capacity_m;
  stream::StreamingEngine engine(scfg);

  std::vector<std::uint64_t> ids;
  for (std::size_t i = 1; i <= kNeighbours; ++i) {
    ids.push_back(city.vehicle_id(i));
    engine.add_neighbour(city.vehicle_id(i));
  }

  std::vector<core::ContextTrajectory> trajs;
  trajs.reserve(kNeighbours + 1);
  for (std::size_t i = 0; i <= kNeighbours; ++i) {
    trajs.emplace_back(ccfg.channels, ccfg.context_capacity_m);
  }
  std::vector<const core::ContextTrajectory*> senders;
  for (std::size_t i = 1; i <= kNeighbours; ++i) senders.push_back(&trajs[i]);

  std::vector<Checkpoint> checkpoints;
  for (std::size_t r = 0; r < kRounds; ++r) {
    city.advance_round();
    std::size_t max_steps = 0;
    for (std::size_t i = 0; i <= kNeighbours; ++i) {
      max_steps = std::max(max_steps, city.samples(i).size());
    }
    Checkpoint cp;
    cp.has.assign(ids.size(), false);
    cp.distance_m.assign(ids.size(), 0.0);
    cp.confidence.assign(ids.size(), 0.0);
    cp.syn_count.assign(ids.size(), 0);
    for (std::size_t s = 0; s < max_steps; ++s) {
      for (std::size_t i = 0; i <= kNeighbours; ++i) {
        const auto& batch = city.samples(i);
        if (s < batch.size()) trajs[i].append(batch[s].geo, batch[s].power);
      }
      const auto& update = engine.update(
          trajs[0],
          std::span<const core::ContextTrajectory* const>(senders.data(),
                                                          senders.size()),
          pool);
      merge(update, ids, cp);
    }
    if (r >= kWarmupRounds) checkpoints.push_back(std::move(cp));
  }
  return checkpoints;
}

/// Cold batch reference: the SAME CityFleet drive appended round-at-a-time,
/// estimated at each checkpoint by a cache-DISABLED FleetEngine (full SYN
/// search every time — no incremental state at all).
std::vector<Checkpoint> run_batch_reference(std::uint64_t seed) {
  const sim::CityFleetConfig ccfg = city_config(seed);
  sim::CityFleet city(ccfg);

  core::FleetConfig fcfg;
  fcfg.rups.channels = ccfg.channels;
  fcfg.rups.context_capacity_m = ccfg.context_capacity_m;
  fcfg.use_cache = false;
  core::FleetEngine fleet(fcfg);

  std::vector<std::uint64_t> ids;
  for (std::size_t i = 1; i <= kNeighbours; ++i) {
    ids.push_back(city.vehicle_id(i));
  }
  std::vector<core::ContextTrajectory> trajs;
  trajs.reserve(kNeighbours + 1);
  for (std::size_t i = 0; i <= kNeighbours; ++i) {
    trajs.emplace_back(ccfg.channels, ccfg.context_capacity_m);
  }
  std::vector<const core::ContextTrajectory*> views;
  for (std::size_t i = 1; i <= kNeighbours; ++i) views.push_back(&trajs[i]);

  std::vector<Checkpoint> checkpoints;
  for (std::size_t r = 0; r < kRounds; ++r) {
    city.advance_round();
    for (std::size_t i = 0; i <= kNeighbours; ++i) {
      for (const auto& s : city.samples(i)) {
        trajs[i].append(s.geo, s.power);
      }
    }
    if (r < kWarmupRounds) continue;
    const auto results = fleet.estimate_batch(
        trajs[0],
        std::span<const core::ContextTrajectory* const>(views.data(),
                                                        views.size()),
        std::span<const std::uint64_t>(ids.data(), ids.size()));
    Checkpoint cp;
    cp.has.assign(ids.size(), false);
    cp.distance_m.assign(ids.size(), 0.0);
    cp.confidence.assign(ids.size(), 0.0);
    cp.syn_count.assign(ids.size(), 0);
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].estimate.has_value()) {
        cp.has[i] = true;
        cp.distance_m[i] = results[i].estimate->distance_m;
        cp.confidence[i] = results[i].estimate->confidence;
        cp.syn_count[i] = results[i].estimate->syn_count;
      }
    }
    checkpoints.push_back(std::move(cp));
  }
  return checkpoints;
}

void expect_identical(const std::vector<Checkpoint>& a,
                      const std::vector<Checkpoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].has, b[c].has) << "checkpoint " << c;
    // Bitwise equality: EXPECT_EQ on double, not NEAR.
    EXPECT_EQ(a[c].distance_m, b[c].distance_m) << "checkpoint " << c;
    EXPECT_EQ(a[c].confidence, b[c].confidence) << "checkpoint " << c;
    EXPECT_EQ(a[c].syn_count, b[c].syn_count) << "checkpoint " << c;
  }
}

constexpr std::uint64_t kSeeds[] = {0xC17F, 0x5EED5, 0xB33F};

TEST(StreamDeterminism, PerMetreIngestMatchesBatchAtCheckpoints) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(seed);
    const auto streaming = run_streaming(seed, nullptr);
    const auto batch = run_batch_reference(seed);
    ASSERT_FALSE(streaming.empty());
    bool any = false;
    for (const auto& cp : streaming) {
      for (bool h : cp.has) any = any || h;
    }
    EXPECT_TRUE(any) << "no estimate ever produced; vacuous comparison";
    expect_identical(streaming, batch);
  }
}

TEST(StreamDeterminism, PooledUpdatesMatchSerial) {
  util::ThreadPool pool(4);
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(seed);
    const auto serial = run_streaming(seed, nullptr);
    const auto pooled = run_streaming(seed, &pool);
    expect_identical(serial, pooled);
  }
}

TEST(StreamDeterminism, ReplayIsBitIdentical) {
  const auto a = run_streaming(0xC17F, nullptr);
  const auto b = run_streaming(0xC17F, nullptr);
  expect_identical(a, b);
}

}  // namespace
}  // namespace rups
