// Property-based tests: randomized invariants that must hold for ANY input,
// swept over seeds with parameterized gtest.

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "core/correlation.hpp"
#include "core/resolver.hpp"
#include "core/types.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "v2v/codec.hpp"
#include "v2v/wsm.hpp"

namespace rups {
namespace {

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Values(1ULL, 17ULL, 555ULL, 90210ULL,
                                           0xDEADBEEFULL));

// --- util ---

TEST_P(PropertySweep, PearsonAlwaysWithinUnitInterval) {
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = static_cast<std::size_t>(rng_.uniform_int(2, 40));
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng_.uniform(-1000.0, 1000.0);
      b[i] = rng_.bernoulli(0.3) ? a[i] : rng_.uniform(-1000.0, 1000.0);
    }
    const double r = util::pearson(a, b);
    EXPECT_GE(r, -1.0 - 1e-9);
    EXPECT_LE(r, 1.0 + 1e-9);
    EXPECT_NEAR(util::pearson(b, a), r, 1e-9);  // symmetric
  }
}

TEST_P(PropertySweep, PercentileMonotoneInQ) {
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(rng_.gaussian(0, 10));
  double prev = -1e18;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double p = util::percentile(xs, q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST_P(PropertySweep, RunningStatsMatchesBatch) {
  util::RunningStats rs;
  std::vector<double> xs;
  const auto n = static_cast<std::size_t>(rng_.uniform_int(2, 200));
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng_.uniform(-50.0, 50.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), util::mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), util::stddev(xs), 1e-9);
}

TEST_P(PropertySweep, RingBufferBehavesLikeBoundedDeque) {
  const auto cap = static_cast<std::size_t>(rng_.uniform_int(1, 16));
  util::RingBuffer<int> rb(cap);
  std::deque<int> model;
  for (int step = 0; step < 300; ++step) {
    const int v = static_cast<int>(rng_.uniform_int(-100, 100));
    rb.push(v);
    model.push_back(v);
    if (model.size() > cap) model.pop_front();
    ASSERT_EQ(rb.size(), model.size());
    for (std::size_t i = 0; i < model.size(); ++i) {
      ASSERT_EQ(rb[i], model[i]);
    }
  }
}

// --- core ---

core::ContextTrajectory random_trajectory(util::Rng& rng, std::size_t metres,
                                          std::size_t channels) {
  core::ContextTrajectory traj(channels, metres + 4);
  for (std::size_t i = 0; i < metres; ++i) {
    core::PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      const double u = rng.uniform();
      if (u < 0.5) {
        pv.set(c, static_cast<float>(rng.uniform(-110.0, -48.0)));
      } else if (u < 0.7) {
        pv.set(c, static_cast<float>(rng.uniform(-110.0, -48.0)),
               core::ChannelState::kInterpolated);
      }
    }
    traj.append(core::GeoSample{rng.uniform(-3.14, 3.14), rng.uniform(0, 1e4)},
                std::move(pv));
  }
  return traj;
}

TEST_P(PropertySweep, TrajectoryCorrelationBoundedAndSelfMaximal) {
  const auto t = random_trajectory(rng_, 80, 12);
  std::vector<std::size_t> chans{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  for (int trial = 0; trial < 20; ++trial) {
    const auto s1 = static_cast<std::size_t>(rng_.uniform_int(0, 40));
    const auto s2 = static_cast<std::size_t>(rng_.uniform_int(0, 40));
    const double r = core::trajectory_correlation({&t, s1}, {&t, s2}, 40,
                                                  chans);
    EXPECT_GE(r, -2.0);
    EXPECT_LE(r, 2.0 + 1e-9);
    if (s1 == s2 && r > -2.0) EXPECT_NEAR(r, 2.0, 1e-6);
  }
}

TEST_P(PropertySweep, ResolveDistanceAntisymmetric) {
  const auto a = random_trajectory(rng_, 100, 4);
  const auto b = random_trajectory(rng_, 120, 4);
  for (int trial = 0; trial < 25; ++trial) {
    const auto w = static_cast<std::size_t>(rng_.uniform_int(5, 30));
    core::SynPoint ab;
    ab.index_a = static_cast<std::size_t>(rng_.uniform_int(0, 60));
    ab.index_b = static_cast<std::size_t>(rng_.uniform_int(0, 80));
    ab.window_m = w;
    const core::SynPoint ba{ab.index_b, ab.index_a, w, 0.0};
    EXPECT_DOUBLE_EQ(core::resolve_distance(a, b, ab),
                     -core::resolve_distance(b, a, ba));
  }
}

TEST_P(PropertySweep, AggregationWithinEstimateRange) {
  const auto a = random_trajectory(rng_, 100, 4);
  const auto b = random_trajectory(rng_, 100, 4);
  std::vector<core::SynPoint> syns;
  const int n = static_cast<int>(rng_.uniform_int(1, 9));
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < n; ++i) {
    core::SynPoint s;
    s.index_a = static_cast<std::size_t>(rng_.uniform_int(0, 70));
    s.index_b = static_cast<std::size_t>(rng_.uniform_int(0, 70));
    s.window_m = 20;
    s.correlation = rng_.uniform(1.2, 2.0);
    syns.push_back(s);
    const double d = core::resolve_distance(a, b, s);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  for (auto scheme :
       {core::Aggregation::kSingleBest, core::Aggregation::kMean,
        core::Aggregation::kSelectiveMean, core::Aggregation::kMedian}) {
    const auto est = core::aggregate_estimates(a, b, syns, scheme);
    ASSERT_TRUE(est.has_value());
    EXPECT_GE(est->distance_m, lo - 1e-9);
    EXPECT_LE(est->distance_m, hi + 1e-9);
  }
}

// --- v2v ---

TEST_P(PropertySweep, CodecRoundTripOnRandomTrajectories) {
  const auto metres = static_cast<std::size_t>(rng_.uniform_int(1, 60));
  const auto channels = static_cast<std::size_t>(rng_.uniform_int(1, 40));
  const auto original = random_trajectory(rng_, metres, channels);
  const auto decoded =
      v2v::TrajectoryCodec::decode(v2v::TrajectoryCodec::encode(original));
  ASSERT_EQ(decoded.size(), original.size());
  ASSERT_EQ(decoded.channels(), original.channels());
  EXPECT_EQ(decoded.first_metre(), original.first_metre());
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t c = 0; c < channels; ++c) {
      ASSERT_EQ(decoded.power(i).state(c), original.power(i).state(c));
      if (original.power(i).usable(c)) {
        ASSERT_NEAR(decoded.power(i).at(c), original.power(i).at(c), 0.51);
      }
    }
  }
}

TEST_P(PropertySweep, CodecDecodeNeverCrashesOnMutatedBytes) {
  const auto original = random_trajectory(rng_, 10, 8);
  auto bytes = v2v::TrajectoryCodec::encode(original);
  for (int trial = 0; trial < 100; ++trial) {
    auto mutated = bytes;
    const int mutations = static_cast<int>(rng_.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::uint8_t>(rng_.uniform_int(1, 255));
    }
    if (rng_.bernoulli(0.3) && mutated.size() > 4) {
      mutated.resize(static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(mutated.size()))));
    }
    // Must either decode or throw — never crash or hang.
    try {
      (void)v2v::TrajectoryCodec::decode(mutated);
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

TEST_P(PropertySweep, WsmRoundTripArbitraryPayloads) {
  const auto size = static_cast<std::size_t>(rng_.uniform_int(1, 20'000));
  std::vector<std::uint8_t> payload(size);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng_.uniform_int(0, 255));
  }
  const auto max_payload =
      static_cast<std::size_t>(rng_.uniform_int(16, 1400));
  const auto packets = v2v::WsmFraming::fragment(payload, 1, max_payload);
  const auto back = v2v::WsmFraming::reassemble(packets);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

}  // namespace
}  // namespace rups
