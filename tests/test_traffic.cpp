#include "vehicle/traffic.hpp"

#include <gtest/gtest.h>

#include "road/route_builder.hpp"

namespace rups::vehicle {
namespace {

TEST(CruiseSpeed, HeavyTrafficSlower) {
  for (road::EnvironmentType env : road::kAllEnvironments) {
    EXPECT_GT(cruise_speed_mps(env, TrafficDensity::kLight),
              cruise_speed_mps(env, TrafficDensity::kModerate));
    EXPECT_GT(cruise_speed_mps(env, TrafficDensity::kModerate),
              cruise_speed_mps(env, TrafficDensity::kHeavy));
  }
}

TEST(CruiseSpeed, PlausibleUrbanRange) {
  for (road::EnvironmentType env : road::kAllEnvironments) {
    const double v = cruise_speed_mps(env, TrafficDensity::kLight);
    EXPECT_GT(v, 5.0);   // > 18 km/h
    EXPECT_LT(v, 25.0);  // < 90 km/h
  }
}

TEST(TrafficLight, GreenRedCycle) {
  TrafficLight l;
  l.cycle_s = 60.0;
  l.green_s = 40.0;
  l.phase_s = 0.0;
  EXPECT_TRUE(l.is_green(0.0));
  EXPECT_TRUE(l.is_green(39.9));
  EXPECT_FALSE(l.is_green(40.1));
  EXPECT_FALSE(l.is_green(59.9));
  EXPECT_TRUE(l.is_green(60.5));  // wraps
}

TEST(TrafficLight, PhaseShiftsCycle) {
  TrafficLight l;
  l.cycle_s = 60.0;
  l.green_s = 30.0;
  l.phase_s = 30.0;
  EXPECT_FALSE(l.is_green(0.0));  // 0+30=30 >= green
  EXPECT_TRUE(l.is_green(31.0));  // 61 mod 60 = 1 < 30
}

TEST(TrafficLight, WaitForGreen) {
  TrafficLight l;
  l.cycle_s = 60.0;
  l.green_s = 40.0;
  l.phase_s = 0.0;
  EXPECT_DOUBLE_EQ(l.wait_for_green(10.0), 0.0);
  EXPECT_NEAR(l.wait_for_green(50.0), 10.0, 1e-9);
  EXPECT_NEAR(l.wait_for_green(59.0), 1.0, 1e-9);
}

TEST(TrafficLight, NegativeTimeHandled) {
  TrafficLight l;
  l.cycle_s = 60.0;
  l.green_s = 30.0;
  l.phase_s = 0.0;
  EXPECT_FALSE(l.is_green(-10.0));  // -10 mod 60 = 50
  EXPECT_TRUE(l.is_green(-40.0));   // 20
}

TEST(TrafficLightPlan, DeterministicFromSeed) {
  const auto route = road::make_evaluation_route(5, 10'000.0);
  const auto a = TrafficLightPlan::for_route(9, route);
  const auto b = TrafficLightPlan::for_route(9, route);
  ASSERT_EQ(a.lights().size(), b.lights().size());
  for (std::size_t i = 0; i < a.lights().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.lights()[i].position_m, b.lights()[i].position_m);
    EXPECT_DOUBLE_EQ(a.lights()[i].phase_s, b.lights()[i].phase_s);
  }
}

TEST(TrafficLightPlan, LightsWithinRouteSortedAndSpaced) {
  const auto route = road::make_evaluation_route(6, 20'000.0);
  const auto plan = TrafficLightPlan::for_route(7, route);
  ASSERT_GT(plan.lights().size(), 5u);
  double prev = -1.0;
  for (const auto& l : plan.lights()) {
    EXPECT_GT(l.position_m, prev);
    EXPECT_LT(l.position_m, route.total_length_m());
    EXPECT_GT(l.position_m - prev, 200.0);  // no absurdly close lights
    prev = l.position_m;
  }
}

TEST(TrafficLightPlan, SuburbSparserThanDowntown) {
  const auto suburb = road::make_uniform_route(
      1, road::EnvironmentType::kTwoLaneSuburb, 20'000.0);
  const auto downtown =
      road::make_uniform_route(1, road::EnvironmentType::kDowntown, 20'000.0);
  const auto plan_s = TrafficLightPlan::for_route(2, suburb);
  const auto plan_d = TrafficLightPlan::for_route(2, downtown);
  EXPECT_LT(plan_s.lights().size(), plan_d.lights().size());
}

TEST(TrafficLightPlan, NextLightLookup) {
  const auto route = road::make_uniform_route(
      3, road::EnvironmentType::kFourLaneUrban, 5'000.0);
  const auto plan = TrafficLightPlan::for_route(4, route);
  ASSERT_GE(plan.lights().size(), 2u);
  const auto first = plan.lights().front();
  const auto at_zero = plan.next_light(0.0);
  ASSERT_TRUE(at_zero.has_value());
  EXPECT_DOUBLE_EQ(at_zero->position_m, first.position_m);
  // Just past the first light, the second is next.
  const auto after = plan.next_light(first.position_m + 0.1);
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->position_m, first.position_m);
  // Past the end: none.
  EXPECT_FALSE(plan.next_light(route.total_length_m() + 1.0).has_value());
}

}  // namespace
}  // namespace rups::vehicle
