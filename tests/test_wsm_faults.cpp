// WSM framing under channel faults: reordering, duplication, truncation
// and bit-flip corruption must never produce a wrong reassembly — either
// the original payload comes back byte-identical, or reassembly reports
// failure. Property-style over seeded FaultyChannel draws.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "v2v/channel.hpp"
#include "v2v/wsm.hpp"

namespace rups::v2v {
namespace {

std::vector<std::uint8_t> patterned_payload(std::size_t n,
                                            std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  util::Rng rng(seed);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return out;
}

TEST(WsmFaults, ChecksumDetectsBitFlip) {
  const auto payload = patterned_payload(3000, 1);
  auto packets = WsmFraming::fragment(payload, 42);
  ASSERT_TRUE(WsmFraming::validate(packets[1]));
  packets[1].payload[17] ^= 0x04;
  EXPECT_FALSE(WsmFraming::validate(packets[1]));
  EXPECT_FALSE(WsmFraming::reassemble(packets).has_value());
}

TEST(WsmFaults, ChecksumDetectsTruncation) {
  const auto payload = patterned_payload(4000, 2);
  auto packets = WsmFraming::fragment(payload, 7);
  packets[2].payload.resize(packets[2].payload.size() / 2);
  EXPECT_FALSE(WsmFraming::validate(packets[2]));
  EXPECT_FALSE(WsmFraming::reassemble(packets).has_value());
}

TEST(WsmFaults, ChecksumCoversHeaderFields) {
  const auto payload = patterned_payload(1000, 3);
  auto packets = WsmFraming::fragment(payload, 9);
  packets[0].seq = 1;  // header damage, payload intact
  EXPECT_FALSE(WsmFraming::validate(packets[0]));
}

TEST(WsmFaults, FragmentRejectsOversizedPayloads) {
  // 16-bit seq/total boundary: 65535 fragments is addressable, 65536 must
  // be rejected loudly instead of silently wrapping the counters.
  const std::vector<std::uint8_t> at_limit(65535, 0xab);
  const auto packets = WsmFraming::fragment(at_limit, 1, /*max_payload=*/1);
  EXPECT_EQ(packets.size(), 65535u);
  EXPECT_EQ(packets.back().total, 65535u);
  EXPECT_EQ(packets.back().seq, 65534u);
  const auto back = WsmFraming::reassemble(packets);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), at_limit.size());

  const std::vector<std::uint8_t> over_limit(65536, 0xcd);
  EXPECT_THROW((void)WsmFraming::fragment(over_limit, 1, /*max_payload=*/1),
               std::length_error);
}

TEST(WsmFaults, ReorderingAndDuplicationAreHarmless) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto payload = patterned_payload(9000 + seed * 137, seed);
    FaultConfig cfg;
    cfg.reorder_rate = 0.5;
    cfg.reorder_span = 6;
    cfg.duplicate_rate = 0.3;
    FaultyChannel channel(seed, cfg);
    auto arrived =
        channel.transmit(WsmFraming::fragment(payload, 5, /*max_payload=*/512));
    const auto late = channel.flush();
    arrived.insert(arrived.end(), late.begin(), late.end());
    const auto back = WsmFraming::reassemble(arrived);
    ASSERT_TRUE(back.has_value()) << "seed " << seed;
    EXPECT_EQ(*back, payload) << "seed " << seed;
  }
}

// The core property: under ANY mix of faults, survivors that validate are
// byte-identical to what was sent, and reassembly either reproduces the
// payload exactly or fails — never a silent wrong answer.
TEST(WsmFaults, PropertyNoSilentCorruption) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng dice(seed * 977);
    const auto payload =
        patterned_payload(2000 + static_cast<std::size_t>(
                                     dice.uniform_int(0, 12'000)),
                          seed);
    FaultConfig cfg;
    cfg.loss_rate = dice.uniform(0.0, 0.3);
    cfg.burst_loss = dice.bernoulli(0.5);
    cfg.p_good_to_bad = 0.05;
    cfg.p_bad_to_good = 0.3;
    cfg.loss_rate_bad = 0.9;
    cfg.reorder_rate = dice.uniform(0.0, 0.4);
    cfg.duplicate_rate = dice.uniform(0.0, 0.2);
    cfg.truncate_rate = dice.uniform(0.0, 0.2);
    cfg.bit_flip_rate = dice.uniform(0.0, 0.2);
    FaultyChannel channel(seed, cfg);

    const auto sent = WsmFraming::fragment(payload, 3, /*max_payload=*/700);
    auto arrived = channel.transmit(sent);
    const auto late = channel.flush();
    arrived.insert(arrived.end(), late.begin(), late.end());

    std::vector<char> got(sent.size(), 0);
    std::vector<WsmPacket> valid;
    for (const auto& p : arrived) {
      if (!WsmFraming::validate(p)) continue;  // damage must be detectable
      ASSERT_LT(p.seq, sent.size()) << "seed " << seed;
      EXPECT_EQ(p.payload, sent[p.seq].payload) << "seed " << seed;
      got[p.seq] = 1;
      valid.push_back(p);
    }
    bool all = !valid.empty();
    for (char g : got) all = all && g != 0;
    const auto back = WsmFraming::reassemble(valid);
    EXPECT_EQ(back.has_value(), all) << "seed " << seed;
    if (back.has_value()) EXPECT_EQ(*back, payload) << "seed " << seed;
  }
}

TEST(WsmFaults, GilbertElliottLossIsBursty) {
  // Compare the burst profile against i.i.d. loss at the same average
  // rate: the GE chain must produce longer loss runs.
  auto longest_run = [](FaultyChannel& ch, std::size_t packets) {
    std::size_t longest = 0, run = 0, lost_before = 0;
    for (std::size_t i = 0; i < packets; ++i) {
      WsmPacket p;
      p.total = 1;
      const bool lost = ch.transmit({p}).empty();
      run = lost ? run + 1 : 0;
      longest = std::max(longest, run);
      (void)lost_before;
    }
    return longest;
  };
  FaultConfig ge;
  ge.burst_loss = true;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.1;   // bursts ~10 packets long
  ge.loss_rate_bad = 0.95;
  FaultyChannel bursty(11, ge);
  FaultyChannel iid(11, FaultConfig::iid(0.16));  // same stationary loss

  const std::size_t n = 4000;
  const std::size_t ge_run = longest_run(bursty, n);
  const std::size_t iid_run = longest_run(iid, n);
  EXPECT_GT(ge_run, iid_run);
  EXPECT_GE(ge_run, 8u);

  const auto& stats = bursty.stats();
  const double loss_rate = static_cast<double>(stats.lost) /
                           static_cast<double>(stats.offered);
  EXPECT_NEAR(loss_rate, 0.16, 0.06);  // matches the stationary average
}

TEST(WsmFaults, ChannelIsReplayable) {
  const auto payload = patterned_payload(20'000, 4);
  const auto sent = WsmFraming::fragment(payload, 8, /*max_payload=*/256);
  auto run_once = [&](std::uint64_t seed) {
    FaultyChannel channel(seed, FaultConfig::tunnel());
    auto arrived = channel.transmit(sent);
    const auto late = channel.flush();
    arrived.insert(arrived.end(), late.begin(), late.end());
    std::vector<std::pair<std::uint16_t, std::vector<std::uint8_t>>> trace;
    trace.reserve(arrived.size());
    for (const auto& p : arrived) trace.emplace_back(p.seq, p.payload);
    return trace;
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

TEST(WsmFaults, CleanProfilePassesEverythingThrough) {
  const auto payload = patterned_payload(8000, 5);
  const auto sent = WsmFraming::fragment(payload, 2);
  FaultyChannel channel(1, FaultConfig::clean());
  const auto arrived = channel.transmit(sent);
  ASSERT_EQ(arrived.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(arrived[i].seq, sent[i].seq);
    EXPECT_EQ(arrived[i].payload, sent[i].payload);
  }
  EXPECT_EQ(channel.stats().lost, 0u);
  EXPECT_EQ(channel.stats().corrupted, 0u);
}

TEST(WsmFaults, NamedProfilesResolve) {
  EXPECT_TRUE(FaultConfig::by_name("urban").burst_loss);
  EXPECT_TRUE(FaultConfig::by_name("tunnel").burst_loss);
  EXPECT_GT(FaultConfig::by_name("congested").reorder_rate, 0.0);
  EXPECT_EQ(FaultConfig::by_name("nonsense").loss_rate, 0.0);
  EXPECT_EQ(FaultConfig::by_name(nullptr).loss_rate, 0.0);
}

}  // namespace
}  // namespace rups::v2v
