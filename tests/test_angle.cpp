#include "util/angle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace rups::util {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Angle, DegRadRoundTrip) {
  EXPECT_NEAR(deg2rad(180.0), kPi, 1e-12);
  EXPECT_NEAR(rad2deg(kPi / 2), 90.0, 1e-12);
  for (double d = -720; d <= 720; d += 37.5) {
    EXPECT_NEAR(rad2deg(deg2rad(d)), d, 1e-9);
  }
}

TEST(Angle, Wrap2Pi) {
  EXPECT_NEAR(wrap_2pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_2pi(2 * kPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_2pi(-0.5), 2 * kPi - 0.5, 1e-12);
  EXPECT_GE(wrap_2pi(-10 * kPi + 0.1), 0.0);
  EXPECT_LT(wrap_2pi(100.0), 2 * kPi);
}

TEST(Angle, WrapPi) {
  EXPECT_NEAR(wrap_pi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi - 0.1), kPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(3 * kPi), kPi, 1e-9);
  EXPECT_NEAR(wrap_pi(0.25), 0.25, 1e-12);
}

TEST(Angle, DiffShortestArc) {
  EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
  // Across the wrap: 179 deg - (-179 deg) = -2 deg, not 358 deg.
  EXPECT_NEAR(angle_diff(deg2rad(179), deg2rad(-179)), deg2rad(-2), 1e-9);
  EXPECT_NEAR(angle_diff(deg2rad(-179), deg2rad(179)), deg2rad(2), 1e-9);
}

TEST(Angle, DiffAntisymmetric) {
  for (double a = -3.0; a <= 3.0; a += 0.7) {
    for (double b = -3.0; b <= 3.0; b += 0.9) {
      EXPECT_NEAR(angle_diff(a, b), -angle_diff(b, a), 1e-9);
    }
  }
}

TEST(Angle, LerpEndpointsAndMid) {
  EXPECT_NEAR(angle_lerp(0.2, 0.8, 0.0), 0.2, 1e-12);
  EXPECT_NEAR(angle_lerp(0.2, 0.8, 1.0), 0.8, 1e-12);
  EXPECT_NEAR(angle_lerp(0.2, 0.8, 0.5), 0.5, 1e-12);
}

TEST(Angle, LerpTakesShortWayAroundWrap) {
  const double a = deg2rad(170);
  const double b = deg2rad(-170);
  const double mid = angle_lerp(a, b, 0.5);
  EXPECT_NEAR(std::abs(mid), kPi, deg2rad(1.0));
}

}  // namespace
}  // namespace rups::util
