// Global allocation accounting: thread/process totals from the interposed
// operator new/delete, span-stage census attribution, and the registry
// publication path. Every value-asserting test guards on
// alloc_accounting_available() so the same binary is correct in sanitizer
// lanes, where interposition auto-disables and the API must be inert.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "obs/alloc.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace rups::obs {
namespace {

Histogram& scratch_hist() {
  return Registry::global().histogram("alloc_test.scratch_us");
}

/// Allocate through a volatile pointer sink so the optimizer cannot elide
/// the operator-new call.
void* volatile g_sink = nullptr;

TEST(AllocAccounting, ThreadTotalsCountNewAndDelete) {
  if (!alloc_accounting_available()) {
    // Sanitizer (or disabled-obs) build: the API stays callable and inert.
    EXPECT_EQ(thread_alloc_totals().count, 0u);
    EXPECT_EQ(process_alloc_totals().bytes, 0u);
    GTEST_SKIP() << "allocation accounting unavailable in this build";
  }

  const AllocTotals before = thread_alloc_totals();
  constexpr std::size_t kBytes = 4096;
  char* p = new char[kBytes];
  g_sink = p;
  const AllocTotals after_new = thread_alloc_totals();
  EXPECT_GE(after_new.count, before.count + 1);
  EXPECT_GE(after_new.bytes, before.bytes + kBytes);

  delete[] p;
  const AllocTotals after_delete = thread_alloc_totals();
  EXPECT_GE(after_delete.frees, before.frees + 1);
}

TEST(AllocAccounting, ProcessTotalsCoverEveryThread) {
  if (!alloc_accounting_available()) {
    GTEST_SKIP() << "allocation accounting unavailable in this build";
  }
  const AllocTotals before = process_alloc_totals();
  auto v = std::make_unique<std::vector<double>>(1024);
  g_sink = v.get();
  const AllocTotals after = process_alloc_totals();
  EXPECT_GT(after.count, before.count);
  EXPECT_GE(after.bytes, before.bytes + 1024 * sizeof(double));
}

TEST(AllocAccounting, AlignedAndNothrowFormsAreCounted) {
  if (!alloc_accounting_available()) {
    GTEST_SKIP() << "allocation accounting unavailable in this build";
  }
  const AllocTotals before = thread_alloc_totals();
  void* aligned = ::operator new(256, std::align_val_t{64});
  ASSERT_NE(aligned, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned) % 64, 0u);
  ::operator delete(aligned, std::align_val_t{64});

  void* soft = ::operator new(128, std::nothrow);
  ASSERT_NE(soft, nullptr);
  ::operator delete(soft, std::nothrow);

  const AllocTotals after = thread_alloc_totals();
  EXPECT_GE(after.count, before.count + 2);
  EXPECT_GE(after.frees, before.frees + 2);
}

TEST(AllocCensus, AttributesAllocationsToTheInnermostOpenSpan) {
  if (!alloc_accounting_available()) {
    enable_alloc_census(true);
    EXPECT_FALSE(alloc_census_enabled());
    EXPECT_TRUE(alloc_census().empty());
    GTEST_SKIP() << "allocation accounting unavailable in this build";
  }

  enable_alloc_census(true);
  reset_alloc_census();
  constexpr std::size_t kBytes = 8192;
  {
    ObsTimer span(&scratch_hist(), "alloctest.stage");
    char* p = new char[kBytes];
    g_sink = p;
    delete[] p;
  }
  enable_alloc_census(false);

  const std::vector<AllocCensusRow> rows = alloc_census();
  const AllocCensusRow* stage = nullptr;
  for (const AllocCensusRow& row : rows) {
    if (std::string_view(row.stage) == "alloctest.stage") stage = &row;
  }
  ASSERT_NE(stage, nullptr) << "census did not attribute to the open span";
  EXPECT_GE(stage->count, 1u);
  EXPECT_GE(stage->bytes, kBytes);
}

TEST(AllocCensus, ResetZerosCellsAndDisabledCensusDoesNotAccumulate) {
  if (!alloc_accounting_available()) {
    GTEST_SKIP() << "allocation accounting unavailable in this build";
  }

  enable_alloc_census(true);
  reset_alloc_census();
  {
    ObsTimer span(&scratch_hist(), "alloctest.reset");
    g_sink = new char[64];
    delete[] static_cast<char*>(g_sink);
  }
  enable_alloc_census(false);
  reset_alloc_census();
  for (const AllocCensusRow& row : alloc_census()) {
    EXPECT_NE(std::string_view(row.stage), "alloctest.reset")
        << "reset left a populated cell behind";
  }

  // Census off: allocations must not land anywhere.
  {
    ObsTimer span(&scratch_hist(), "alloctest.off");
    g_sink = new char[64];
    delete[] static_cast<char*>(g_sink);
  }
  for (const AllocCensusRow& row : alloc_census()) {
    EXPECT_NE(std::string_view(row.stage), "alloctest.off");
  }
}

TEST(AllocCensus, PublishMirrorsCellsIntoGaugeFamilies) {
  if (!alloc_accounting_available()) {
    publish_alloc_census();  // must stay callable
    GTEST_SKIP() << "allocation accounting unavailable in this build";
  }

  enable_alloc_census(true);
  reset_alloc_census();
  {
    ObsTimer span(&scratch_hist(), "alloctest.publish");
    g_sink = new char[1024];
    delete[] static_cast<char*>(g_sink);
  }
  enable_alloc_census(false);
  publish_alloc_census();

  const MetricsSnapshot snap = Registry::global().snapshot();
  const GaugeSample* count =
      snap.gauge("alloc.count{stage=\"alloctest.publish\"}");
  const GaugeSample* bytes =
      snap.gauge("alloc.bytes{stage=\"alloctest.publish\"}");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(bytes, nullptr);
  EXPECT_GE(count->value, 1.0);
  EXPECT_GE(bytes->value, 1024.0);
}

}  // namespace
}  // namespace rups::obs
