#include "core/tracker.hpp"

#include <gtest/gtest.h>

#include "util/hash_noise.hpp"
#include "util/rng.hpp"

namespace rups::core {
namespace {

float road_rssi(std::uint64_t road_seed, std::int64_t metre, std::size_t ch) {
  const util::HashNoise chan_noise(road_seed ^ 0xABCDULL);
  const util::LatticeField1D spatial(
      util::hash_combine(road_seed, static_cast<std::uint64_t>(ch)), 8.0, 2);
  const double base =
      -95.0 + 40.0 * chan_noise.uniform(static_cast<std::int64_t>(ch));
  return static_cast<float>(base +
                            6.0 * spatial.value(static_cast<double>(metre)));
}

/// Appends metres [from, to) of the road to a trajectory (vehicle's own
/// odometer counts from where it first entered).
void extend(ContextTrajectory& traj, std::uint64_t road_seed,
            std::int64_t road_from, std::int64_t road_to,
            std::size_t channels, util::Rng& rng, double sigma = 0.5) {
  for (std::int64_t m = road_from; m < road_to; ++m) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      pv.set(c, road_rssi(road_seed, m, c) +
                    static_cast<float>(rng.gaussian(0.0, sigma)));
    }
    traj.append(GeoSample{}, std::move(pv));
  }
}

NeighbourTracker::Config small_config() {
  NeighbourTracker::Config cfg;
  cfg.syn.window_m = 40;
  cfg.syn.top_channels = 20;
  cfg.syn.coherency_threshold = 1.2;
  return cfg;
}

class TrackerTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kChannels = 30;
  static constexpr std::uint64_t kRoad = 5;
  ContextTrajectory local_{kChannels, 600};
  ContextTrajectory neighbour_{kChannels, 600};
  util::Rng rng_a_{10}, rng_b_{11};

  void SetUp() override {
    // Neighbour (front car) is 60 road-metres ahead; both have 200 m of
    // context.
    extend(local_, kRoad, 0, 200, kChannels, rng_a_);
    extend(neighbour_, kRoad, 60, 260, kChannels, rng_b_);
  }
};

TEST_F(TrackerTest, InitializeLocksAndEstimates) {
  NeighbourTracker tracker(small_config());
  EXPECT_FALSE(tracker.locked());
  ASSERT_TRUE(tracker.initialize(local_, neighbour_));
  EXPECT_TRUE(tracker.locked());
  EXPECT_FALSE(tracker.needs_full_refresh());

  const auto est = tracker.estimate(local_);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->distance_m, -60.0, 3.0);  // local is 60 m behind
}

TEST_F(TrackerTest, InitializeFailsOnUnrelatedRoad) {
  ContextTrajectory foreign(kChannels, 600);
  util::Rng rng(12);
  extend(foreign, /*road=*/777, 0, 200, kChannels, rng);
  NeighbourTracker tracker(small_config());
  EXPECT_FALSE(tracker.initialize(local_, foreign));
  EXPECT_FALSE(tracker.locked());
  EXPECT_TRUE(tracker.needs_full_refresh());
  EXPECT_FALSE(tracker.estimate(local_).has_value());
}

TEST_F(TrackerTest, TailIngestExtendsCache) {
  NeighbourTracker tracker(small_config());
  ASSERT_TRUE(tracker.initialize(local_, neighbour_));
  const std::size_t before = tracker.neighbour()->size();

  // Neighbour advances 30 m; ship only the new metres.
  ContextTrajectory tail(kChannels, 64);
  util::Rng rng(13);
  extend(tail, kRoad, 260, 290, kChannels, rng);
  tail.rebase(neighbour_.first_metre() + neighbour_.size());
  ASSERT_TRUE(tracker.ingest_tail(tail));
  EXPECT_EQ(tracker.neighbour()->size(), before + 30);
}

TEST_F(TrackerTest, TailWithGapTriggersRefresh) {
  NeighbourTracker tracker(small_config());
  ASSERT_TRUE(tracker.initialize(local_, neighbour_));
  ContextTrajectory tail(kChannels, 16);
  util::Rng rng(14);
  extend(tail, kRoad, 300, 310, kChannels, rng);
  tail.rebase(neighbour_.first_metre() + neighbour_.size() + 50);  // gap!
  EXPECT_FALSE(tracker.ingest_tail(tail));
  EXPECT_TRUE(tracker.needs_full_refresh());
}

TEST_F(TrackerTest, OverlappingTailIsDeduplicated) {
  NeighbourTracker tracker(small_config());
  ASSERT_TRUE(tracker.initialize(local_, neighbour_));
  const std::size_t before = tracker.neighbour()->size();
  ContextTrajectory tail(kChannels, 64);
  util::Rng rng(15);
  extend(tail, kRoad, 250, 280, kChannels, rng);  // 10 m overlap + 20 new
  tail.rebase(neighbour_.first_metre() + neighbour_.size() - 10);
  ASSERT_TRUE(tracker.ingest_tail(tail));
  EXPECT_EQ(tracker.neighbour()->size(), before + 20);
}

TEST_F(TrackerTest, TrackingThroughMotion) {
  NeighbourTracker tracker(small_config());
  ASSERT_TRUE(tracker.initialize(local_, neighbour_));

  // Both cars advance in 10 m steps for 100 m; tracker re-estimates from
  // cheap tail updates only.
  std::int64_t local_road = 200, neigh_road = 260;
  for (int step = 0; step < 10; ++step) {
    extend(local_, kRoad, local_road, local_road + 10, kChannels, rng_a_);
    local_road += 10;
    ContextTrajectory tail(kChannels, 16);
    extend(tail, kRoad, neigh_road, neigh_road + 10, kChannels, rng_b_);
    tail.rebase(tracker.neighbour()->first_metre() +
                tracker.neighbour()->size());
    ASSERT_TRUE(tracker.ingest_tail(tail));
    neigh_road += 10;

    ASSERT_TRUE(tracker.maintain(local_));
    const auto est = tracker.estimate(local_);
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(est->distance_m, -60.0, 3.0) << "step " << step;
  }
}

TEST_F(TrackerTest, GapChangesAreTracked) {
  NeighbourTracker tracker(small_config());
  ASSERT_TRUE(tracker.initialize(local_, neighbour_));

  // Local car closes 20 m of the gap: it advances 30 m while the
  // neighbour advances only 10 m.
  extend(local_, kRoad, 200, 230, kChannels, rng_a_);
  ContextTrajectory tail(kChannels, 16);
  extend(tail, kRoad, 260, 270, kChannels, rng_b_);
  tail.rebase(tracker.neighbour()->first_metre() + tracker.neighbour()->size());
  ASSERT_TRUE(tracker.ingest_tail(tail));

  const auto est = tracker.estimate(local_);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->distance_m, -40.0, 3.0);
}

TEST_F(TrackerTest, DriftModelRequestsRefresh) {
  auto cfg = small_config();
  cfg.drift_per_metre = 0.05;
  cfg.refresh_threshold_m = 4.0;
  cfg.verify_interval_m = 1e9;  // never verify: force the drift path
  NeighbourTracker tracker(cfg);
  ASSERT_TRUE(tracker.initialize(local_, neighbour_));

  // 100 m of travel at 5% drift = 5 m estimated error > 4 m threshold.
  extend(local_, kRoad, 200, 300, kChannels, rng_a_);
  tracker.maintain(local_);
  EXPECT_TRUE(tracker.needs_full_refresh());
  EXPECT_GT(tracker.estimated_drift_m(), 4.0);
}

TEST_F(TrackerTest, VerifyResetsDrift) {
  auto cfg = small_config();
  cfg.drift_per_metre = 0.05;
  cfg.refresh_threshold_m = 10.0;
  cfg.verify_interval_m = 40.0;
  NeighbourTracker tracker(cfg);
  ASSERT_TRUE(tracker.initialize(local_, neighbour_));

  // Advance both sides 50 m -> verification due; after it drift resets.
  extend(local_, kRoad, 200, 250, kChannels, rng_a_);
  ContextTrajectory tail(kChannels, 64);
  extend(tail, kRoad, 260, 310, kChannels, rng_b_);
  tail.rebase(tracker.neighbour()->first_metre() + tracker.neighbour()->size());
  ASSERT_TRUE(tracker.ingest_tail(tail));
  ASSERT_TRUE(tracker.maintain(local_));
  EXPECT_DOUBLE_EQ(tracker.estimated_drift_m(), 0.0);
  const auto est = tracker.estimate(local_);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->distance_m, -60.0, 3.0);
}

TEST_F(TrackerTest, VerifyDetectsLostLock) {
  auto cfg = small_config();
  cfg.verify_interval_m = 40.0;
  NeighbourTracker tracker(cfg);
  ASSERT_TRUE(tracker.initialize(local_, neighbour_));

  // Local car turns onto a DIFFERENT road: the re-verification window no
  // longer matches the cached neighbour context.
  extend(local_, /*road=*/999, 0, 60, kChannels, rng_a_);
  EXPECT_FALSE(tracker.maintain(local_));
  EXPECT_TRUE(tracker.needs_full_refresh());
  EXPECT_FALSE(tracker.locked());
}

}  // namespace
}  // namespace rups::core
