#include "sim/campaign.hpp"

#include <gtest/gtest.h>

namespace rups::sim {
namespace {

Scenario tiny_scenario() {
  Scenario s = Scenario::two_car(3, road::EnvironmentType::kFourLaneUrban);
  s.route_length_m = 6'000.0;
  return s;
}

TEST(Campaign, CollectsRequestedQueries) {
  ConvoySimulation sim(tiny_scenario());
  CampaignConfig cfg;
  cfg.warmup_s = 350.0;
  cfg.interval_s = 5.0;
  cfg.max_queries = 10;
  const auto result = run_campaign(sim, cfg);
  EXPECT_EQ(result.queries.size(), 10u);
  EXPECT_GE(sim.now(), 350.0 + 10 * 5.0 - 1e-6);
}

TEST(Campaign, ErrorAccessorsFilterProperly) {
  ConvoySimulation sim(tiny_scenario());
  CampaignConfig cfg;
  cfg.max_queries = 8;
  const auto result = run_campaign(sim, cfg);
  EXPECT_LE(result.rups_errors().size(), result.queries.size());
  EXPECT_LE(result.gps_errors().size(), result.queries.size());
  EXPECT_LE(result.syn_errors().size(), result.queries.size());
  for (double e : result.rups_errors()) EXPECT_GE(e, 0.0);
  for (double e : result.gps_errors()) EXPECT_GE(e, 0.0);
  const double avail = result.rups_availability();
  EXPECT_GE(avail, 0.0);
  EXPECT_LE(avail, 1.0);
  EXPECT_NEAR(avail,
              static_cast<double>(result.rups_errors().size()) /
                  static_cast<double>(result.queries.size()),
              1e-9);
}

TEST(Campaign, TimeLimitStopsEarly) {
  ConvoySimulation sim(tiny_scenario());
  CampaignConfig cfg;
  cfg.warmup_s = 100.0;
  cfg.interval_s = 10.0;
  cfg.max_queries = 1000;
  cfg.time_limit_s = 160.0;
  const auto result = run_campaign(sim, cfg);
  EXPECT_LE(result.queries.size(), 7u);
  EXPECT_GE(result.queries.size(), 5u);
}

TEST(Campaign, EmptyResultOnZeroQueries) {
  ConvoySimulation sim(tiny_scenario());
  CampaignConfig cfg;
  cfg.max_queries = 0;
  const auto result = run_campaign(sim, cfg);
  EXPECT_TRUE(result.queries.empty());
  EXPECT_EQ(result.rups_availability(), 0.0);
}

}  // namespace
}  // namespace rups::sim
