// Service-scale gate: drives a 10k-vehicle CityFleet through the sharded
// MatcherService and enforces the service-mode contract.
//
// Default mode — service_scaling_gate:
//   * bit-identity: every sharding (1/2/4/8 shards, serial and pooled
//     drains) must reproduce the reference estimates from a plain
//     per-vehicle FleetEngine replay of the same workload, bit for bit;
//   * capacity scaling: warm-round queries-per-second capacity (accepted
//     requests / busiest shard's serial busy time — the throughput an
//     operator gets with one worker per shard) must scale >= 2x from 1 to
//     4 shards;
//   * tail latency: warm-round per-request p99 must stay under budget;
//   * zero-alloc steady state: with allocation accounting available, the
//     driving thread must perform ZERO operator-new calls across an entire
//     warm serial round (observe + submit + drain), ratcheted against the
//     service_census section of BENCH_alloc_baseline.json.
//
// --report-only: a small deterministic service campaign (CityFleet N=24,
// serial) whose admission/routing/session counters are exact functions of
// the seed — emits bench_out/service_scaling_metrics.json, replayed by
// bench_regression.sh pass 9 as the service_metrics section.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "service/matcher_service.hpp"
#include "sim/service_sim.hpp"
#include "util/json.hpp"

namespace {

using namespace rups;

std::string g_baseline_path;  // --baseline FILE (service_census section)

constexpr std::size_t kRounds = 14;
constexpr std::size_t kWarmupRounds = 8;   // context feeding, no queries
constexpr std::size_t kColdQueryRounds = 2;  // first searches, unmeasured
constexpr std::size_t kCensusRounds = 2;   // tail rounds with census on
constexpr double kP99BudgetUs = 5000.0;
constexpr double kMinQpsScaling41 = 2.0;   // 1 -> 4 shards capacity floor

sim::CityFleetConfig city_config(std::size_t vehicles) {
  sim::CityFleetConfig city;
  city.vehicles = vehicles;
  city.channels = 45;
  // 200 m rings fill at round 10 (20 m/round): the first-eviction
  // transition (a one-time buffer handoff per vehicle) is behind us before
  // the census rounds, which then see the true steady state.
  city.context_capacity_m = 200;
  city.spacing_m = 30.0;
  // Lockstep advance keeps every pair's relative geometry constant, so
  // steady-state rounds stay inside the tracking verify radius — the
  // regime the zero-alloc census is about.
  city.min_advance_m = 20;
  city.max_advance_m = 20;
  return city;
}

service::ServiceConfig service_config(std::size_t vehicles,
                                      std::size_t shards) {
  service::ServiceConfig cfg;
  cfg.shard_count = shards;
  cfg.cell_m = 250.0;
  cfg.queue_capacity = vehicles + vehicles / 4 + 16;
  cfg.max_vehicles = vehicles;
  cfg.max_sessions = vehicles + 16;
  cfg.max_round_requests = cfg.queue_capacity;  // same table every config
  cfg.fleet.rups.channels = 45;
  cfg.fleet.rups.context_capacity_m = 200;
  return cfg;
}

/// One query outcome, compared bit for bit across shardings.
struct Outcome {
  bool has_estimate = false;
  double distance_m = 0.0;
  double confidence = 0.0;
  std::size_t syn_count = 0;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome outcome_of(const core::FleetEngine::NeighbourResult& r) {
  Outcome o;
  o.has_estimate = r.estimate.has_value();
  if (o.has_estimate) {
    o.distance_m = r.estimate->distance_m;
    o.confidence = r.estimate->confidence;
    o.syn_count = r.estimate->syn_count;
  }
  return o;
}

struct RunResult {
  /// outcomes[query_round][query_index]
  std::vector<std::vector<Outcome>> outcomes;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  /// Busiest-shard busy seconds per WARM query round.
  double max_shard_busy_s = 0.0;
  /// Per-request warm latencies (us) across shards and warm rounds.
  std::vector<double> warm_latencies_us;
  /// Census: max operator-new calls on the driving thread across measured
  /// serial rounds (only filled when census_rounds > 0).
  std::uint64_t census_max_allocs = 0;
  std::size_t census_rounds = 0;
};

/// Replay the workload through a MatcherService with `shards` shards.
RunResult run_service(std::size_t vehicles, std::size_t shards, bool pooled,
                      bool census) {
  sim::CityFleet city(city_config(vehicles));
  service::MatcherService svc(service_config(vehicles, shards));
  std::optional<util::ThreadPool> pool;
  if (pooled) pool.emplace(4);

  for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
    (void)svc.register_vehicle(city.vehicle_id(v), city.position(v));
  }

  RunResult out;
  std::vector<service::MatcherService::Ticket> tickets;
  tickets.reserve(city.queries().size());

  for (std::size_t round = 0; round < kRounds; ++round) {
    city.advance_round();

    const bool measured_census =
        census && !pooled && round >= kRounds - kCensusRounds;
    if (measured_census && out.census_rounds == 0) {
      obs::enable_alloc_census(true);
      obs::reset_alloc_census();
    }
    const obs::AllocTotals before = obs::thread_alloc_totals();

    svc.begin_round();
    for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
      for (const sim::CityFleet::Sample& s : city.samples(v)) {
        (void)svc.observe(city.vehicle_id(v), s.position_m, s.geo, s.power);
      }
    }
    if (round < kWarmupRounds) continue;

    tickets.clear();
    for (const sim::CityFleet::Query& q : city.queries()) {
      const auto t =
          svc.submit(city.vehicle_id(q.ego), city.vehicle_id(q.neighbour));
      tickets.push_back(t);
      if (t.accepted()) {
        ++out.accepted;
      } else {
        ++out.rejected;
      }
    }
    svc.drain(pool ? &*pool : nullptr);

    if (measured_census) {
      const std::uint64_t allocs =
          (obs::thread_alloc_totals() - before).count;
      out.census_max_allocs = std::max(out.census_max_allocs, allocs);
      ++out.census_rounds;
    }

    auto& round_outcomes = out.outcomes.emplace_back();
    round_outcomes.reserve(tickets.size());
    for (const auto& t : tickets) {
      round_outcomes.push_back(t.accepted() ? outcome_of(svc.result(t))
                                            : Outcome{});
    }

    const bool warm = round >= kWarmupRounds + kColdQueryRounds;
    if (warm) {
      double busiest = 0.0;
      for (std::size_t s = 0; s < svc.shard_count(); ++s) {
        busiest = std::max(busiest, svc.shard_stats(s).busy_us);
        const auto& lat = svc.shard_latencies(s);
        out.warm_latencies_us.insert(out.warm_latencies_us.end(),
                                     lat.begin(), lat.end());
      }
      out.max_shard_busy_s += busiest / 1e6;
    }
  }
  if (census) obs::enable_alloc_census(false);
  return out;
}

/// Reference: the same workload through bare per-vehicle FleetEngines —
/// no shards, no queues, no admission. What a single-process deployment
/// computes.
RunResult run_reference(std::size_t vehicles) {
  sim::CityFleet city(city_config(vehicles));
  const service::ServiceConfig cfg = service_config(vehicles, 1);

  std::vector<core::ContextTrajectory> trajs;
  std::vector<core::FleetEngine> engines;
  trajs.reserve(vehicles);
  engines.reserve(vehicles);
  for (std::size_t v = 0; v < vehicles; ++v) {
    trajs.emplace_back(cfg.fleet.rups.channels,
                       cfg.fleet.rups.context_capacity_m);
    engines.emplace_back(cfg.fleet);
  }

  RunResult out;
  std::vector<core::FleetEngine::NeighbourResult> scratch;
  for (std::size_t round = 0; round < kRounds; ++round) {
    city.advance_round();
    for (std::size_t v = 0; v < vehicles; ++v) {
      for (const sim::CityFleet::Sample& s : city.samples(v)) {
        trajs[v].append(s.geo, s.power);
      }
    }
    if (round < kWarmupRounds) continue;

    auto& round_outcomes = out.outcomes.emplace_back();
    round_outcomes.reserve(city.queries().size());
    for (const sim::CityFleet::Query& q : city.queries()) {
      const core::ContextTrajectory* nb = &trajs[q.neighbour];
      const std::uint64_t nb_id = city.vehicle_id(q.neighbour);
      engines[q.ego].estimate_batch_into(
          trajs[q.ego],
          std::span<const core::ContextTrajectory* const>(&nb, 1),
          std::span<const std::uint64_t>(&nb_id, 1), nullptr, scratch);
      round_outcomes.push_back(outcome_of(scratch[0]));
      ++out.accepted;
    }
  }
  return out;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank =
      std::clamp(q, 0.0, 1.0) * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

bool same_outcomes(const RunResult& a, const RunResult& b) {
  return a.outcomes == b.outcomes && a.accepted == b.accepted &&
         a.rejected == b.rejected;
}

int run_gate() {
  const std::size_t vehicles =
      std::max<std::size_t>(64, bench::scaled(10'000));
  bench::header("service", "sharded matcher service scaling + zero-alloc");
  std::printf(
      "  %zu vehicles, %zu rounds (%zu warm-up, %zu cold query), "
      "ring query plan\n",
      vehicles, kRounds, kWarmupRounds, kColdQueryRounds);

  const RunResult reference = run_reference(vehicles);

  struct Row {
    std::size_t shards;
    bool pooled;
    RunResult result;
  };
  std::vector<Row> rows;
  for (const std::size_t shards : {1UL, 2UL, 4UL, 8UL}) {
    rows.push_back({shards, false,
                    run_service(vehicles, shards, false, shards == 4)});
  }
  rows.push_back({4, true, run_service(vehicles, 4, true, false)});

  auto csv = bench::csv_out("service_scaling");
  csv.row({"shards", "pooled", "accepted", "rejected", "busy_s",
           "qps_capacity", "p99_us"});

  bool identical = true;
  double qps1 = 0.0;
  double qps4 = 0.0;
  double worst_p99 = 0.0;
  std::printf("  %-7s %-7s %10s %9s %10s %14s %10s %6s\n", "shards", "mode",
              "accepted", "rejected", "busy_s", "qps_capacity", "p99_us",
              "match");
  for (const Row& row : rows) {
    const bool match = same_outcomes(reference, row.result);
    identical = identical && match;
    const double busy = row.result.max_shard_busy_s;
    const double warm_queries =
        static_cast<double>(row.result.warm_latencies_us.size());
    const double qps = busy > 0.0 ? warm_queries / busy : 0.0;
    const double p99 = quantile(row.result.warm_latencies_us, 0.99);
    // The p99 budget applies to serial drains: per-request wall time under
    // a pooled drain on an oversubscribed host measures thread scheduling,
    // not service compute. The pooled row still gates on bit-identity.
    if (!row.pooled) worst_p99 = std::max(worst_p99, p99);
    if (row.shards == 1 && !row.pooled) qps1 = qps;
    if (row.shards == 4 && !row.pooled) qps4 = qps;
    std::printf("  %-7zu %-7s %10llu %9llu %10.3f %14.1f %10.1f %6s\n",
                row.shards, row.pooled ? "pooled" : "serial",
                static_cast<unsigned long long>(row.result.accepted),
                static_cast<unsigned long long>(row.result.rejected), busy,
                qps, p99, match ? "yes" : "NO");
    csv.row({static_cast<double>(row.shards), row.pooled ? 1.0 : 0.0,
             static_cast<double>(row.result.accepted),
             static_cast<double>(row.result.rejected), busy, qps, p99});
  }

  const double scaling = qps1 > 0.0 ? qps4 / qps1 : 0.0;
  const std::uint64_t vehicles_sustained =
      rows.front().result.rejected == 0 ? vehicles : 0;
  std::printf("\n");
  bench::paper_vs_measured("qps capacity scaling 1 -> 4 shards (x)", 4.0,
                           scaling, "x");
  std::printf("  vehicles sustained without rejection:  %llu\n",
              static_cast<unsigned long long>(vehicles_sustained));
  std::printf("  estimates bit-identical to unsharded engine: %s\n",
              identical ? "PASS" : "FAIL");
  std::printf("  qps scaling >= %.1fx:               %s\n", kMinQpsScaling41,
              scaling >= kMinQpsScaling41 ? "PASS" : "FAIL");
  std::printf("  warm p99 %.1f us <= %.0f us:       %s\n", worst_p99,
              kP99BudgetUs, worst_p99 <= kP99BudgetUs ? "PASS" : "FAIL");

  bool census_ok = true;
  const Row* census_row = nullptr;
  for (const Row& row : rows) {
    if (row.result.census_rounds > 0) census_row = &row;
  }
  if (!obs::alloc_accounting_available() || census_row == nullptr) {
    std::printf("  zero-alloc census: SKIPPED (accounting unavailable)\n");
  } else {
    // Absent a baseline file the ceiling is the target itself: zero.
    double baseline_max = 0.0;
    if (!g_baseline_path.empty()) {
      std::ifstream in(g_baseline_path);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        try {
          const util::JsonValue doc = util::JsonValue::parse(buf.str());
          if (const util::JsonValue* v =
                  doc.find_path("service_census.round_allocs_max")) {
            baseline_max = v->as_number();
          }
        } catch (const std::exception&) {
          baseline_max = 0.0;
        }
      }
    }
    census_ok = static_cast<double>(census_row->result.census_max_allocs) <=
                baseline_max;
    std::printf(
        "  zero-alloc census (serial, %zu rounds): max %llu allocs/round "
        "vs baseline %.0f -> %s\n",
        census_row->result.census_rounds,
        static_cast<unsigned long long>(census_row->result.census_max_allocs),
        baseline_max, census_ok ? "PASS" : "FAIL");
    if (!census_ok) {
      // Span-stage attribution of the leaked allocations.
      for (const obs::AllocCensusRow& row : obs::alloc_census()) {
        std::printf("    stage %-28s count %8llu bytes %10llu\n", row.stage,
                    static_cast<unsigned long long>(row.count),
                    static_cast<unsigned long long>(row.bytes));
      }
    }
  }

  const bool ok = identical && scaling >= kMinQpsScaling41 &&
                  worst_p99 <= kP99BudgetUs && census_ok &&
                  vehicles_sustained >= std::min<std::uint64_t>(vehicles,
                                                                10'000);
  std::printf("service scaling: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int run_report() {
  bench::header("service", "deterministic service campaign (report mode)");
  sim::ServiceCampaignConfig cfg;
  cfg.city.vehicles = 24;
  cfg.city.channels = 45;
  cfg.city.context_capacity_m = 240;
  cfg.city.min_advance_m = 8;
  cfg.city.max_advance_m = 14;
  cfg.rounds = 12;
  cfg.warmup_rounds = 4;
  cfg.pool_threads = 0;
  cfg.service.shard_count = 4;
  cfg.service.queue_capacity = 64;
  cfg.service.max_vehicles = 32;
  cfg.service.max_sessions = 64;

  const sim::ServiceCampaignResult result = sim::run_service_campaign(cfg);
  std::printf(
      "  requests %llu | accepted %llu | rejected %llu | estimates %llu\n",
      static_cast<unsigned long long>(result.requests),
      static_cast<unsigned long long>(result.accepted),
      static_cast<unsigned long long>(result.rejected),
      static_cast<unsigned long long>(result.estimates));
  std::printf("  availability %.3f | mean latency %.1f us\n",
              result.availability, result.mean_latency_us);
  for (std::size_t s = 0; s < result.shard_processed.size(); ++s) {
    std::printf("  shard %zu processed %llu\n", s,
                static_cast<unsigned long long>(result.shard_processed[s]));
  }
  std::printf("  health: %s (%zu alerts)\n",
              result.health.healthy() ? "healthy" : "alerting",
              result.health.alerts.size());

  bench::print_stage_breakdown();
  const auto json = bench::write_metrics_json("service_scaling");
  std::printf("  metrics json: %s\n", json.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool report_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report-only") == 0) {
      report_only = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      g_baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_service_scaling [--report-only] "
                   "[--baseline FILE]\n");
      return 2;
    }
  }
  return report_only ? run_report() : run_gate();
}
