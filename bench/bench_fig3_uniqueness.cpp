// Fig 3: geographical uniqueness — CDFs of the trajectory correlation
// coefficient (eq. 2) for same-road different entries vs different roads,
// on a workday and a weekend (here: two independent time offsets). The
// paper samples 200 road segments across downtown/urban/suburban Shanghai.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gsm/gsm_field.hpp"
#include "road/road_network.hpp"
#include "sim/survey.hpp"
#include "util/stats.hpp"

using namespace rups;

int main() {
  bench::header("Fig 3", "geographical uniqueness of GSM-aware trajectories");

  const auto plan = gsm::ChannelPlan::full_r_gsm_900();
  gsm::GsmField field(2016, plan);
  sim::GsmSurvey survey(&field);
  const auto net = road::RoadNetwork::generate(
      5, 200, 150.0,
      {road::EnvironmentType::kDowntown, road::EnvironmentType::kFourLaneUrban,
       road::EnvironmentType::kTwoLaneSuburb});

  const std::size_t pairs = bench::scaled(120);
  struct Series {
    const char* label;
    bool same_road;
    std::uint64_t seed;  // stands in for workday/weekend trace halves
  };
  const Series series[] = {
      {"different roads, weekend", false, 11},
      {"different roads, workday", false, 12},
      {"different entries, weekend", true, 13},
      {"different entries, workday", true, 14},
  };

  auto csv = bench::csv_out("fig3_uniqueness");
  csv.row(std::vector<std::string>{"series", "correlation"});

  double mean_same = 0.0, mean_diff = 0.0;
  int n_same = 0, n_diff = 0;
  for (const auto& s : series) {
    const auto corr = survey.uniqueness_correlations(net, s.same_road, 1800.0,
                                                     150.0, pairs, s.seed);
    util::EmpiricalCdf cdf{std::vector<double>(corr)};
    std::printf("  %-28s p10 %6.3f  median %6.3f  p90 %6.3f\n", s.label,
                cdf.quantile(0.1), cdf.quantile(0.5), cdf.quantile(0.9));
    for (double v : corr) {
      csv.row(std::vector<std::string>{s.label, std::to_string(v)});
    }
    if (s.same_road) {
      mean_same += util::mean(corr);
      ++n_same;
    } else {
      mean_diff += util::mean(corr);
      ++n_diff;
    }
  }
  mean_same /= n_same;
  mean_diff /= n_diff;

  std::printf("  mean trajectory correlation: same road %.3f, different roads %.3f\n",
              mean_same, mean_diff);
  bench::note("paper: same-road CDFs sit far right of different-road CDFs");
  const bool pass = mean_same > mean_diff + 0.5 && mean_same > 1.2;
  std::printf("  shape check: same-road >> different-road separation: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
