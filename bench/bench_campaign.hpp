#pragma once

// Shared scenario setup for the evaluation benches (Figs. 9-12): the
// paper's common configuration — two cars 40 m apart, 1000 m journey
// context, checking window of top-45 channels x 85 m, coherency threshold
// 1.2 (Sec. VI-B).

#include "bench_common.hpp"
#include "sim/campaign.hpp"
#include "sim/convoy_sim.hpp"

namespace rups::bench {

inline sim::Scenario paper_scenario(std::uint64_t seed,
                                    road::EnvironmentType env,
                                    bool distinct_lanes = false) {
  sim::Scenario s = sim::Scenario::two_car(seed, env, /*gap_m=*/40.0);
  s.route_length_m = 14'000.0;
  s.rups.syn.window_m = 85;
  s.rups.syn.top_channels = 45;
  s.rups.syn.coherency_threshold = 1.2;
  s.rups.aggregation = core::Aggregation::kSelectiveMean;
  if (distinct_lanes) {
    s.vehicles[0].lane = 2;
    s.vehicles[1].lane = 6;
  }
  return s;
}

inline void set_radios(sim::Scenario& s, int front_car_radios,
                       int rear_car_radios,
                       sensors::RadioPlacement rear_placement =
                           sensors::RadioPlacement::kFrontPanel) {
  s.vehicles[0].radios = front_car_radios;
  s.vehicles[1].radios = rear_car_radios;
  s.vehicles[1].placement = rear_placement;
}

inline sim::CampaignResult run(const sim::Scenario& scenario,
                               std::size_t queries) {
  sim::ConvoySimulation sim(scenario);
  sim::CampaignConfig cfg;
  cfg.max_queries = queries;
  return sim::run_campaign(sim, cfg);
}

}  // namespace rups::bench
