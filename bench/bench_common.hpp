#pragma once

// Shared helpers for the figure-reproduction bench binaries. Each binary
// regenerates one artefact of the paper's evaluation (see DESIGN.md) and
// prints the series plus a paper-vs-measured comparison; the raw series is
// also written to bench_out/<name>.csv for plotting.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/csv.hpp"

namespace rups::bench {

/// Query/sample count scale factor: RUPS_BENCH_SCALE=2 doubles every
/// campaign; 0.25 quarters it for smoke runs. Default 1.
inline double scale() {
  if (const char* env = std::getenv("RUPS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t n) {
  const double s = scale() * static_cast<double>(n);
  return s < 1.0 ? 1 : static_cast<std::size_t>(s);
}

/// CSV sink under bench_out/.
inline rups::util::CsvWriter csv_out(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return rups::util::CsvWriter(std::filesystem::path("bench_out") /
                               (name + ".csv"));
}

inline void header(const char* figure, const char* title) {
  std::printf("================================================================\n");
  std::printf("RUPS reproduction | %s: %s\n", figure, title);
  std::printf("================================================================\n");
}

inline void paper_vs_measured(const char* what, double paper, double measured,
                              const char* unit) {
  std::printf("  %-46s paper %7.2f %-4s | measured %7.2f %-4s\n", what, paper,
              unit, measured, unit);
}

inline void note(const char* text) { std::printf("  note: %s\n", text); }

/// Dump the global metrics registry as JSON under
/// bench_out/<name>_metrics.json (plus a flat CSV next to it). Returns the
/// JSON path.
inline std::filesystem::path write_metrics_json(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  const auto snap = rups::obs::Registry::global().snapshot();
  const auto json_path =
      std::filesystem::path("bench_out") / (name + "_metrics.json");
  std::ofstream out(json_path);
  out << snap.to_json() << "\n";
  rups::util::CsvWriter csv(std::filesystem::path("bench_out") /
                            (name + "_metrics.csv"));
  snap.write_csv(csv);
  return json_path;
}

/// Per-stage observability breakdown: every counter, gauge and histogram
/// accumulated so far, grouped by name prefix (engine. / syn. / gsm. /
/// v2v. / campaign.). Histograms print count, mean, and the interpolated
/// p50/p95/p99 (obs::histogram_quantile) bracketed by min/max.
inline void print_stage_breakdown() {
  const auto snap = rups::obs::Registry::global().snapshot();
  if (snap.counters.empty() && snap.gauges.empty() &&
      snap.histograms.empty()) {
    std::printf("  (no metrics recorded — RUPS_OBS_DISABLED build?)\n");
    return;
  }
  std::printf("----------------------------------------------------------------\n");
  std::printf("per-stage observability breakdown (rups::obs)\n");
  std::printf("----------------------------------------------------------------\n");
  for (const auto& c : snap.counters) {
    std::printf("  %-36s %16llu\n", c.name.c_str(),
                static_cast<unsigned long long>(c.value));
  }
  for (const auto& g : snap.gauges) {
    std::printf("  %-36s %16.4f\n", g.name.c_str(), g.value);
  }
  for (const auto& h : snap.histograms) {
    std::printf(
        "  %-36s n=%-8llu mean=%-10.2f p50=%-10.2f p95=%-10.2f "
        "p99=%-10.2f min=%-8.2f max=%.2f\n",
        h.name.c_str(), static_cast<unsigned long long>(h.count), h.mean(),
        rups::obs::histogram_quantile(h, 0.50),
        rups::obs::histogram_quantile(h, 0.95),
        rups::obs::histogram_quantile(h, 0.99), h.min, h.max);
  }
}

}  // namespace rups::bench
