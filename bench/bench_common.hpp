#pragma once

// Shared helpers for the figure-reproduction bench binaries. Each binary
// regenerates one artefact of the paper's evaluation (see DESIGN.md) and
// prints the series plus a paper-vs-measured comparison; the raw series is
// also written to bench_out/<name>.csv for plotting.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace rups::bench {

/// Query/sample count scale factor: RUPS_BENCH_SCALE=2 doubles every
/// campaign; 0.25 quarters it for smoke runs. Default 1.
inline double scale() {
  if (const char* env = std::getenv("RUPS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t n) {
  const double s = scale() * static_cast<double>(n);
  return s < 1.0 ? 1 : static_cast<std::size_t>(s);
}

/// CSV sink under bench_out/.
inline rups::util::CsvWriter csv_out(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return rups::util::CsvWriter(std::filesystem::path("bench_out") /
                               (name + ".csv"));
}

inline void header(const char* figure, const char* title) {
  std::printf("================================================================\n");
  std::printf("RUPS reproduction | %s: %s\n", figure, title);
  std::printf("================================================================\n");
}

inline void paper_vs_measured(const char* what, double paper, double measured,
                              const char* unit) {
  std::printf("  %-46s paper %7.2f %-4s | measured %7.2f %-4s\n", what, paper,
              unit, measured, unit);
}

inline void note(const char* text) { std::printf("  note: %s\n", text); }

}  // namespace rups::bench
