// Fig 2: temporary stability of GSM power vectors — P(pairwise correlation
// >= threshold) as a function of the time difference between the pair, for
// {0.8, 0.9} thresholds x {194, 10} channel subsets. The paper measures 20
// downtown locations x 100 pairs per time gap; counts scale with
// RUPS_BENCH_SCALE.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gsm/gsm_field.hpp"
#include "road/road_network.hpp"
#include "sim/survey.hpp"

using namespace rups;

int main() {
  bench::header("Fig 2", "temporary stability of GSM power vectors");

  const auto plan = gsm::ChannelPlan::full_r_gsm_900();
  gsm::GsmField field(2016, plan);
  sim::GsmSurvey survey(&field);
  // 20 downtown locations, as in the paper.
  const auto net = road::RoadNetwork::generate(
      3, 20, 150.0, {road::EnvironmentType::kDowntown});

  const std::size_t trials = bench::scaled(400);
  const double gaps_min[] = {0.083, 1, 3, 5, 8, 12, 16, 20, 25};  // 5 s .. 25 min
  struct Curve {
    double threshold;
    std::size_t channels;
    const char* label;
  };
  const Curve curves[] = {{0.80, 194, "corr>=0.80, 194 ch"},
                          {0.90, 194, "corr>=0.90, 194 ch"},
                          {0.80, 10, "corr>=0.80,  10 ch"},
                          {0.90, 10, "corr>=0.90,  10 ch"}};

  auto csv = bench::csv_out("fig2_temporal_stability");
  csv.row(std::vector<std::string>{"gap_min", "p_080_194", "p_090_194",
                                   "p_080_10", "p_090_10"});

  std::printf("  %-9s", "gap(min)");
  for (const auto& c : curves) std::printf("  %-20s", c.label);
  std::printf("\n");

  std::vector<std::vector<double>> table;
  for (double gap : gaps_min) {
    std::vector<double> row{gap};
    std::printf("  %-9.2f", gap);
    for (const auto& c : curves) {
      const double p = survey.temporal_stability_probability(
          net, gap * 60.0, c.threshold, c.channels, trials, 99);
      row.push_back(p);
      std::printf("  %-20.3f", p);
    }
    std::printf("\n");
    csv.row(row);
    table.push_back(row);
  }

  // Paper-shape checks: the 0.8/194ch curve stays >= 0.95 over long gaps;
  // 0.9 thresholds sit below 0.8 thresholds.
  const auto& first = table.front();
  const auto& last = table.back();
  bench::paper_vs_measured("P(corr>=0.8, 194ch) at short gap", 0.95, first[1],
                           "");
  bench::paper_vs_measured("P(corr>=0.8, 194ch) at 25 min", 0.95, last[1], "");
  bool pass = first[1] >= 0.90 && last[1] >= 0.85;
  for (const auto& row : table) {
    if (row[2] > row[1] + 0.05 || row[4] > row[3] + 0.05) pass = false;
  }
  std::printf("  shape check: high stability at 0.8 threshold, 0.9 below 0.8: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
