// Ops-plane gates for the sampling profiler and the allocation ratchet,
// on the same warm N=16 fleet campaign bench_telemetry uses.
//
// Default mode — profiler_overhead_gate: runs the campaign with the
// sampling span-stack profiler off and on (interleaved best-of-2, fresh
// identically-seeded simulations per run) and fails when estimates differ
// in any bit, when the profiler-on wall clock exceeds the off one by more
// than the ceiling, or when the profiler sampled nothing (a profiler that
// observes no stacks is broken, not cheap). Prints the folded-stack
// attribution table so the gate log doubles as a profile report.
//
// --census mode — steady_alloc_gate: drives the fleet campaign round by
// round with global allocation accounting on, measures operator-new calls
// per warm round on the driving thread (serial batches: every estimate
// task allocates on this thread), and prints the span-attributed
// allocation census. With --baseline FILE the measured warm-round
// allocation count is ratcheted against the committed baseline
// (BENCH_alloc_baseline.json): the warm path is deterministic, so growth
// beyond the tolerance means a new allocation actually landed on the hot
// path. Skips (exit 77) when allocation accounting is unavailable (ASAN
// builds own the allocator).
//
// --report-only: the census run without the ratchet — emits
// bench_out/profile_metrics.json (registry snapshot with the census
// families spliced into gauges), replayed by bench_regression.sh pass 7.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "sim/fleet_sim.hpp"
#include "util/json.hpp"

namespace {

using namespace rups;

constexpr std::size_t kVehicles = 17;  // ego + 16 neighbours
constexpr std::size_t kRounds = 16;
constexpr std::size_t kWarmRounds = 4;  // cache/V2V warm-up, unmeasured
constexpr std::uint64_t kSeed = 7;
constexpr double kOverheadCeiling = 1.25;   // noisy 1-CPU container
constexpr double kAllocRatchetTol = 0.10;   // warm path is deterministic

sim::Scenario make_scenario() {
  sim::Scenario scenario = sim::Scenario::fleet(
      kSeed, road::EnvironmentType::kFourLaneUrban, kVehicles, /*gap_m=*/25.0);
  scenario.route_length_m = 9'000.0;
  return scenario;
}

sim::FleetCampaignConfig make_config() {
  sim::FleetCampaignConfig cfg;
  cfg.base.max_queries = kRounds;  // fixed: deterministic census counters
  cfg.base.interval_s = 3.0;
  return cfg;
}

// ---------------------------------------------------------------------------
// profiler_overhead_gate (default mode)

struct RunResult {
  double seconds = 0.0;
  sim::FleetCampaignResult campaign;
};

RunResult run_once(obs::SpanProfiler* profiler) {
  const sim::FleetCampaignConfig cfg = make_config();
  sim::FleetSimulation fleet(make_scenario(), cfg);

  RunResult out;
  const auto started = std::chrono::steady_clock::now();
  if (profiler != nullptr) profiler->start();
  out.campaign = sim::run_fleet_campaign(fleet, cfg);
  if (profiler != nullptr) profiler->stop();
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              started)
                    .count();
  return out;
}

/// Estimates (and the SYN points they came from) must match bit for bit:
/// profiling may cost time, never accuracy.
bool same_estimates(const sim::FleetCampaignResult& a,
                    const sim::FleetCampaignResult& b) {
  if (a.rounds.size() != b.rounds.size()) return false;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const auto& xs = a.rounds[r].outcomes;
    const auto& ys = b.rounds[r].outcomes;
    if (xs.size() != ys.size()) return false;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const auto& x = xs[i].result;
      const auto& y = ys[i].result;
      if (xs[i].neighbour_index != ys[i].neighbour_index) return false;
      if (x.estimate.has_value() != y.estimate.has_value()) return false;
      if (x.estimate.has_value() &&
          (x.estimate->distance_m != y.estimate->distance_m ||
           x.estimate->confidence != y.estimate->confidence ||
           x.estimate->syn_count != y.estimate->syn_count)) {
        return false;
      }
      if (x.syn_points.size() != y.syn_points.size()) return false;
    }
  }
  return true;
}

int run_overhead_gate() {
  bench::header("profile", "sampling profiler overhead (warm fleet, N=16)");
  std::printf("  %zu vehicles, %zu rounds, clean channel, serial batches\n",
              kVehicles, kRounds);

  // Interleaved best-of-2 per mode: alternating absorbs slow drift in
  // container load better than back-to-back pairs.
  double best_off = 0.0;
  double best_on = 0.0;
  std::optional<RunResult> last_off;
  std::optional<RunResult> last_on;
  obs::FoldedProfile profile;
  for (int rep = 0; rep < 2; ++rep) {
    RunResult off = run_once(nullptr);
    obs::SpanProfiler profiler;  // fresh per run: profile == one campaign
    RunResult on = run_once(&profiler);
    profile = profiler.profile();
    std::printf("  rep %d: off %.3f s | on %.3f s (%llu samples, %llu ticks)\n",
                rep, off.seconds, on.seconds,
                static_cast<unsigned long long>(profile.total_samples),
                static_cast<unsigned long long>(profile.ticks));
    best_off = best_off == 0.0 ? off.seconds : std::min(best_off, off.seconds);
    best_on = best_on == 0.0 ? on.seconds : std::min(best_on, on.seconds);
    last_off = std::move(off);
    last_on = std::move(on);
  }

  const bool identical = same_estimates(last_off->campaign, last_on->campaign);
  const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;
  const bool sampled = profile.total_samples > 0 && !profile.rows.empty();
  std::printf("\n");
  bench::paper_vs_measured("profiler-on / profiler-off wall clock", 1.05,
                           ratio, "x");
  std::printf("  estimates bit-identical on vs off: %s\n",
              identical ? "PASS" : "FAIL");
  std::printf("  overhead ceiling (noise-tolerant): %.2fx -> %s\n",
              kOverheadCeiling, ratio <= kOverheadCeiling ? "PASS" : "FAIL");
  std::printf("  profiler captured samples:         %s\n",
              sampled ? "PASS" : "FAIL");
  if (sampled) {
    std::printf("\n%s", profile.attribution_table().c_str());
    std::filesystem::create_directories("bench_out");
    std::ofstream folded("bench_out/profile.folded");
    folded << profile.to_folded();
    std::printf("\n  folded stacks: bench_out/profile.folded\n");
  }

  const bool ok = identical && ratio <= kOverheadCeiling && sampled;
  std::printf("profiler overhead: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// steady_alloc_gate (--census [--baseline FILE]) and --report-only

struct CensusResult {
  std::size_t rounds_measured = 0;
  std::uint64_t max_allocs = 0;
  double mean_allocs = 0.0;
};

/// Drives the campaign cadence by hand (run_until + query_round, serial)
/// so the driving-thread allocation delta around each warm round is exact:
/// warm-up and the first kWarmRounds rounds (full searches, full V2V
/// transfers) are excluded, the census window covers only the steady
/// state the zero-alloc target is about.
CensusResult run_census_campaign() {
  const sim::FleetCampaignConfig cfg = make_config();
  sim::FleetSimulation fleet(make_scenario(), cfg);
  fleet.run_until(cfg.base.warmup_s);
  double t = cfg.base.warmup_s;

  CensusResult out;
  std::uint64_t total = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    t += cfg.base.interval_s;
    fleet.run_until(t);
    if (fleet.sim().finished()) break;
    if (round == kWarmRounds) {
      obs::enable_alloc_census(true);
      obs::reset_alloc_census();
    }
    const obs::AllocTotals before = obs::thread_alloc_totals();
    (void)fleet.query_round();
    const std::uint64_t allocs =
        (obs::thread_alloc_totals() - before).count;
    if (round >= kWarmRounds) {
      ++out.rounds_measured;
      total += allocs;
      out.max_allocs = std::max(out.max_allocs, allocs);
    }
  }
  obs::enable_alloc_census(false);
  if (out.rounds_measured > 0) {
    out.mean_allocs =
        static_cast<double>(total) / static_cast<double>(out.rounds_measured);
  }
  return out;
}

void print_census_table() {
  const std::vector<obs::AllocCensusRow> rows = obs::alloc_census();
  std::printf("\nwarm-path allocation census (by active span):\n");
  std::printf("  %-28s %12s %14s\n", "stage", "allocs", "bytes");
  for (const obs::AllocCensusRow& row : rows) {
    std::printf("  %-28s %12llu %14llu\n", row.stage,
                static_cast<unsigned long long>(row.count),
                static_cast<unsigned long long>(row.bytes));
  }
  if (rows.empty()) std::printf("  (census empty)\n");
}

int run_census(const std::string& baseline_path, bool report_only) {
  bench::header("profile", "warm-path allocation census (warm fleet, N=16)");
  if (!obs::alloc_accounting_available()) {
    std::printf(
        "  allocation accounting unavailable in this build (sanitizer owns\n"
        "  the allocator) — steady_alloc_gate skipped\n");
    return 77;  // ctest SKIP_RETURN_CODE
  }
  std::printf("  %zu vehicles, %zu rounds (%zu warm-up), clean channel, "
              "serial batches\n",
              kVehicles, kRounds, kWarmRounds);

  const CensusResult census = run_census_campaign();
  if (census.rounds_measured == 0) {
    std::printf("steady alloc: FAIL (no rounds measured)\n");
    return 1;
  }

  // The ratchet axes as gauges, so the regression baseline replays them.
  obs::Registry::global().gauge("alloc.round_allocs_max").set(
      static_cast<double>(census.max_allocs));
  obs::Registry::global().gauge("alloc.round_allocs_mean")
      .set(census.mean_allocs);
  obs::publish_alloc_census();

  std::printf("  measured rounds: %zu | allocs/round max %llu, mean %.1f\n",
              census.rounds_measured,
              static_cast<unsigned long long>(census.max_allocs),
              census.mean_allocs);
  print_census_table();
  bench::write_metrics_json("profile");
  std::printf("  metrics json: bench_out/profile_metrics.json\n");

  if (report_only) return 0;

  if (baseline_path.empty()) {
    std::printf("\nsteady alloc: PASS (no --baseline, census only)\n");
    return 0;
  }
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", baseline_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  double baseline_max = 0.0;
  try {
    const util::JsonValue doc = util::JsonValue::parse(buf.str());
    const util::JsonValue* v = doc.find_path("alloc_census.round_allocs_max");
    if (v == nullptr) throw std::runtime_error("missing round_allocs_max");
    baseline_max = v->as_number();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", baseline_path.c_str(), e.what());
    return 1;
  }

  const double ceiling = baseline_max * (1.0 + kAllocRatchetTol);
  const bool ok = static_cast<double>(census.max_allocs) <= ceiling;
  std::printf("\n  ratchet: max allocs/round %llu vs baseline %.0f "
              "(+%.0f%% tolerance -> %.0f)\n",
              static_cast<unsigned long long>(census.max_allocs), baseline_max,
              kAllocRatchetTol * 100.0, ceiling);
  std::printf("steady alloc: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool census = false;
  bool report_only = false;
  std::string baseline;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--census") == 0) {
      census = true;
    } else if (std::strcmp(argv[i], "--report-only") == 0) {
      report_only = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_profile [--census [--baseline FILE] | "
                   "--report-only]\n");
      return 2;
    }
  }
  if (census || report_only) return run_census(baseline, report_only);
  return run_overhead_gate();
}
