// Sec. V-A: computational cost of the SYN-point search. The paper reports
// O(m*w*k) complexity and ~1.2 ms average processing time for a 1000 m
// journey context with a 100 m x 45-channel checking window on an
// i7-2640M. This google-benchmark binary sweeps m (context length), w
// (window length) and k (channel count), plus thread-pool scaling and the
// per-sample ingestion costs of the engine front-end.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/syn_seeker.hpp"
#include "util/hash_noise.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rups;

/// Two related synthetic contexts of the given size (50 m true offset).
struct Pair {
  core::ContextTrajectory a;
  core::ContextTrajectory b;
};

Pair make_pair(std::size_t metres, std::size_t channels) {
  const util::HashNoise chan_noise(0xC0FFEE);
  const auto rssi = [&](std::int64_t road_m, std::size_t c) {
    const util::LatticeField1D f(util::hash_combine(17, c), 8.0, 2);
    return static_cast<float>(-95.0 + 40.0 * chan_noise.uniform(static_cast<std::int64_t>(c)) +
                              6.0 * f.value(static_cast<double>(road_m)));
  };
  Pair p{core::ContextTrajectory(channels, metres),
         core::ContextTrajectory(channels, metres)};
  util::Rng rng(5);
  for (std::size_t i = 0; i < metres; ++i) {
    core::PowerVector pa(channels), pb(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      pa.set(c, rssi(static_cast<std::int64_t>(i), c) +
                    static_cast<float>(rng.gaussian(0, 0.5)));
      pb.set(c, rssi(static_cast<std::int64_t>(i) + 50, c) +
                    static_cast<float>(rng.gaussian(0, 0.5)));
    }
    p.a.append(core::GeoSample{}, std::move(pa));
    p.b.append(core::GeoSample{}, std::move(pb));
  }
  return p;
}

core::SynConfig config_for(std::size_t window, std::size_t channels) {
  core::SynConfig cfg;
  cfg.window_m = window;
  cfg.top_channels = channels;
  cfg.coherency_threshold = 1.2;
  return cfg;
}

void BM_SynSearch_ContextLength(benchmark::State& state) {
  const auto metres = static_cast<std::size_t>(state.range(0));
  const auto pair = make_pair(metres, 115);
  const core::SynSeeker seeker(config_for(100, 45));
  for (auto _ : state) {
    benchmark::DoNotOptimize(seeker.find_one(pair.a, pair.b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(metres));
}
BENCHMARK(BM_SynSearch_ContextLength)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Complexity(benchmark::oN);

void BM_SynSearch_WindowLength(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const auto pair = make_pair(1000, 115);
  const core::SynSeeker seeker(config_for(window, 45));
  for (auto _ : state) {
    benchmark::DoNotOptimize(seeker.find_one(pair.a, pair.b));
  }
}
BENCHMARK(BM_SynSearch_WindowLength)->Arg(25)->Arg(50)->Arg(100);

void BM_SynSearch_ChannelCount(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto pair = make_pair(1000, 115);
  const core::SynSeeker seeker(config_for(100, k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(seeker.find_one(pair.a, pair.b));
  }
}
BENCHMARK(BM_SynSearch_ChannelCount)->Arg(10)->Arg(45)->Arg(115);

// The paper's reference configuration: m=1000, w=100, k=45 (~1.2 ms on the
// authors' laptop; absolute numbers depend on hardware, the point is the
// order of magnitude: a few ms per query).
void BM_SynSearch_PaperReference(benchmark::State& state) {
  const auto pair = make_pair(1000, 115);
  const core::SynSeeker seeker(config_for(100, 45));
  for (auto _ : state) {
    benchmark::DoNotOptimize(seeker.find_one(pair.a, pair.b));
  }
}
BENCHMARK(BM_SynSearch_PaperReference);

void BM_SynSearch_ThreadPool(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto pair = make_pair(1000, 115);
  util::ThreadPool pool(threads);
  const core::SynSeeker seeker(config_for(100, 45), &pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seeker.find_one(pair.a, pair.b));
  }
}
BENCHMARK(BM_SynSearch_ThreadPool)->Arg(1)->Arg(2)->Arg(4);

// Coarse-to-fine search: same result (tested), ~stride x cheaper sweep.
void BM_SynSearch_CoarseToFine(benchmark::State& state) {
  const auto pair = make_pair(1000, 115);
  core::SynConfig cfg = config_for(100, 45);
  cfg.coarse_stride_m = static_cast<std::size_t>(state.range(0));
  const core::SynSeeker seeker(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seeker.find_one(pair.a, pair.b));
  }
}
BENCHMARK(BM_SynSearch_CoarseToFine)->Arg(0)->Arg(4)->Arg(8);

void BM_MultiSynQuery(benchmark::State& state) {
  const auto pair = make_pair(1000, 115);
  core::SynConfig cfg = config_for(85, 45);
  cfg.syn_points = static_cast<std::size_t>(state.range(0));
  cfg.syn_segment_spacing_m = 25;
  const core::SynSeeker seeker(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seeker.find(pair.a, pair.b));
  }
}
BENCHMARK(BM_MultiSynQuery)->Arg(1)->Arg(5);

// Front-end ingestion costs (Sec. V-A argues perception overhead is
// negligible; verify).
void BM_Engine_OnImu(benchmark::State& state) {
  core::RupsConfig cfg;
  cfg.channels = 115;
  cfg.assume_aligned_sensors = true;
  core::RupsEngine engine(cfg);
  engine.on_speed({0.0, 10.0});
  engine.on_speed({1.0, 10.0});
  sensors::ImuSample imu;
  imu.accel_mps2 = {0.0, 0.0, 9.80665};
  imu.mag_ut = {-30.0, 0.0, -35.0};
  double t = 2.0;
  for (auto _ : state) {
    imu.time_s = t;
    t += 0.005;
    engine.on_imu(imu);
  }
}
BENCHMARK(BM_Engine_OnImu);

void BM_Engine_OnRssi(benchmark::State& state) {
  core::RupsConfig cfg;
  cfg.channels = 115;
  cfg.assume_aligned_sensors = true;
  core::RupsEngine engine(cfg);
  sensors::RssiMeasurement m;
  m.rssi_dbm = -70.0;
  std::size_t c = 0;
  for (auto _ : state) {
    m.channel_index = c++ % 115;
    engine.on_rssi(m);
  }
}
BENCHMARK(BM_Engine_OnRssi);

}  // namespace

// BENCHMARK_MAIN plus an observability epilogue: the per-stage counters and
// timing histograms accumulated across every benchmark above are printed
// and dumped to bench_out/compute_cost_metrics.json — the measured baseline
// future perf PRs diff against (see BENCH_obs_baseline.json).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto path = rups::bench::write_metrics_json("compute_cost");
  rups::bench::print_stage_breakdown();
  std::printf("  metrics json: %s\n", path.c_str());
  return 0;
}
