// Extension (paper Sec. VII future work): "further improve the accuracy of
// RUPS by involving other ambient wireless signals such as the 3G/4G, FM
// and TV bands". This bench adds the FM broadcast band (87.5–108 MHz,
// 205 channels) to the scanned spectrum and compares GSM-only, FM-only and
// combined fingerprinting.
//
// Modelling note: FM transmitters reuse the same deterministic tower/
// shadowing machinery as GSM (DESIGN.md §2) — broadcast infrastructure is
// sparser in reality, so treat FM-only numbers as optimistic; the point of
// the experiment is the marginal value of EXTRA spectrum, which survives
// that approximation.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_campaign.hpp"
#include "util/stats.hpp"
#include "v2v/codec.hpp"

using namespace rups;

int main() {
  bench::header("Extension", "multi-band fingerprinting (GSM + FM)");

  struct Case {
    const char* label;
    std::size_t gsm_channels;
    bool fm;
    int radios;
  };
  // Key trade-off this experiment surfaces: spectrum is only useful if the
  // scan capacity scales with it. With a FIXED radio count, a wider plan
  // stretches the sweep (15 ms/channel), the per-sweep batch report smears
  // over more road, and binding accuracy collapses — so the fair multi-band
  // configuration adds radios along with the band.
  const Case cases[] = {
      {"GSM 115 ch, 4 radios (paper)", 115, false, 4},
      {"GSM 40 ch, 4 radios (sparse)", 40, false, 4},
      {"GSM 40+FM 206, 4 radios", 40, true, 4},
      {"GSM 40+FM 206, 12 radios", 40, true, 12},
      {"GSM 115+FM 206, 12 radios", 115, true, 12},
  };

  const std::size_t queries = bench::scaled(120);
  auto csv = bench::csv_out("ext_multiband");
  csv.row(std::vector<std::string>{"case", "channels", "mean_rde_m",
                                   "availability", "context_kb_per_km"});

  std::printf("  %-26s %-9s %-12s %-14s %s\n", "case", "channels",
              "mean RDE(m)", "availability", "KB/km context");
  std::vector<double> rde;
  std::vector<double> avail;
  for (const auto& c : cases) {
    auto scenario =
        bench::paper_scenario(71, road::EnvironmentType::kFourLaneUrban);
    scenario.channels = c.gsm_channels;
    scenario.include_fm_band = c.fm;
    bench::set_radios(scenario, c.radios, c.radios);
    sim::ConvoySimulation sim(scenario);
    sim::CampaignConfig cfg;
    cfg.max_queries = queries;
    const auto result = sim::run_campaign(sim, cfg);
    util::RunningStats r;
    for (double e : result.rups_errors()) r.add(e);
    const std::size_t channels = sim.scenario().channels;
    const double kb_per_km =
        static_cast<double>(v2v::TrajectoryCodec::encoded_size(1000, channels)) /
        1000.0;
    std::printf("  %-26s %-9zu %-12.2f %-14.2f %.0f\n", c.label, channels,
                r.mean(), result.rups_availability(), kb_per_km);
    csv.row(std::vector<std::string>{
        c.label, std::to_string(channels), std::to_string(r.mean()),
        std::to_string(result.rups_availability()),
        std::to_string(kb_per_km)});
    rde.push_back(r.mean());
    avail.push_back(result.rups_availability());
  }

  // Expected shape: adding FM on FIXED radios degrades (sweep smear); with
  // radios scaled to the band, the wide plan is at least as good as the
  // sparse GSM-only plan.
  const bool pass = rde[2] > rde[1] + 1.0 &&
                    rde[3] < rde[2] / 4.0 && avail[3] >= 0.95 &&
                    rde[4] <= rde[0] + 1.0;
  std::printf("  shape check: fixed radios + wide band smears; scaled radios recover: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
