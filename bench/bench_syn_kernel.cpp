// Kernel-level microbenchmark of the lag-batched correlation kernel
// (Sec. V-A inner loop): one full sliding scan of a 1000 m context,
// scored through packed_correlation_batch_lanes at block widths
// B ∈ {1, 4, 8, 16} (1 = the per-position scalar path), swept over window
// length w ∈ {50, 100, 200}, channel count k ∈ {16, 45, 128} and
// masked-sample fraction ∈ {0, 0.1, 0.3}. The paper point m=1000 / w=100 /
// k=45 is additionally timed outside google-benchmark into deterministic
// kernel gauges + a batch-vs-scalar speedup figure; `--selfcheck` runs
// only that measurement and exits non-zero below a 2x floor (the ctest
// perf smoke gate).
//
// The emitted bench_out/syn_kernel_metrics.json becomes the baseline's
// kernel_metrics section: sweep-shape counters are exactly reproducible
// (diffed at 2%), per-position timing gauges are machine-dependent (diffed
// one-sided — only slowdowns fail).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "core/packed.hpp"
#include "core/quant.hpp"
#include "core/syn_seeker.hpp"
#include "util/hash_noise.hpp"
#include "util/rng.hpp"

namespace {

using namespace rups;

constexpr std::size_t kContextMetres = 1000;
constexpr std::size_t kPaperWindow = 100;
constexpr std::size_t kPaperChannels = 45;
constexpr int kPaperMaskPct = 10;
constexpr double kSelfcheckFloor = 2.0;
/// Quantized gate: int16 must beat the FLOAT batch kernel (not the scalar
/// path) by this factor at the paper point, with the score error within
/// the differential-test bound and an identical argmax.
constexpr double kQuantSelfcheckFloor = 2.0;
constexpr double kQuantMaxErr16 = 2e-2;

/// One prepared scan: a fixed checking window and a full sliding context,
/// packed, with identity row maps — exactly what SynSeeker::slide streams.
struct Scan {
  core::SubsetPack fixed_pack;
  core::SubsetPack slide_pack;
  std::vector<std::size_t> rows;
  std::size_t window = 0;
  std::size_t positions = 0;
  core::TrajectoryCorrelationConfig config{};

  [[nodiscard]] core::PackedView fixed() const {
    return {fixed_pack.span(), rows};
  }
  [[nodiscard]] core::PackedView sliding() const {
    return {slide_pack.span(), rows};
  }
};

core::ContextTrajectory synth(std::size_t metres, std::size_t channels,
                              std::int64_t road_offset, int mask_pct,
                              std::uint64_t seed) {
  const util::HashNoise chan_noise(0xC0FFEE);
  core::ContextTrajectory t(channels, metres);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < metres; ++i) {
    core::PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if (rng.uniform() * 100.0 < static_cast<double>(mask_pct)) continue;
      const util::LatticeField1D f(util::hash_combine(17, c), 8.0, 2);
      pv.set(c, static_cast<float>(
                    -95.0 +
                    40.0 * chan_noise.uniform(static_cast<std::int64_t>(c)) +
                    6.0 * f.value(static_cast<double>(
                              road_offset + static_cast<std::int64_t>(i))) +
                    rng.gaussian(0, 0.5)));
    }
    t.append(core::GeoSample{}, std::move(pv));
  }
  return t;
}

Scan make_scan(std::size_t window, std::size_t channels, int mask_pct) {
  Scan s;
  s.window = window;
  s.positions = kContextMetres - window + 1;
  s.rows.resize(channels);
  std::iota(s.rows.begin(), s.rows.end(), std::size_t{0});
  // The fixed window sits 50 road-metres into the sliding context, so the
  // scan crosses a genuine correlation peak like a real seek does.
  const auto fixed_t = synth(window, channels, 50, mask_pct, 7);
  const auto slide_t = synth(kContextMetres, channels, 0, mask_pct, 8);
  s.fixed_pack = core::SubsetPack(fixed_t, s.rows, 0, window);
  s.slide_pack = core::SubsetPack(slide_t, s.rows, 0, kContextMetres);
  return s;
}

/// Quantized mirrors of one Scan's packs plus typed views — what the
/// SynSeeker quantized path streams through quantized_correlation_batch.
struct QuantScan {
  core::QuantizedPack fixed16, slide16, fixed8, slide8;

  explicit QuantScan(const Scan& s) {
    fixed16.build(s.fixed_pack.span(), core::QuantBits::kInt16);
    slide16.build(s.slide_pack.span(), core::QuantBits::kInt16);
    fixed8.build(s.fixed_pack.span(), core::QuantBits::kInt8);
    slide8.build(s.slide_pack.span(), core::QuantBits::kInt8);
  }
  [[nodiscard]] core::QuantView16 fixed_v16(const Scan& s) const {
    return {fixed16.span16(), s.rows};
  }
  [[nodiscard]] core::QuantView16 slide_v16(const Scan& s) const {
    return {slide16.span16(), s.rows};
  }
  [[nodiscard]] core::QuantView8 fixed_v8(const Scan& s) const {
    return {fixed8.span8(), s.rows};
  }
  [[nodiscard]] core::QuantView8 slide_v8(const Scan& s) const {
    return {slide8.span8(), s.rows};
  }
};

void BM_KernelScan(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const auto channels = static_cast<std::size_t>(state.range(1));
  const auto lanes = static_cast<std::size_t>(state.range(2));
  const auto mask_pct = static_cast<int>(state.range(3));
  const Scan s = make_scan(window, channels, mask_pct);
  std::vector<double> scores(s.positions, 0.0);
  for (auto _ : state) {
    core::packed_correlation_batch_lanes(lanes, s.fixed(), 0, s.sliding(), 0,
                                         s.positions, s.window, s.config,
                                         scores.data());
    benchmark::DoNotOptimize(scores.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.positions));
}
BENCHMARK(BM_KernelScan)
    ->ArgNames({"w", "k", "B", "maskpct"})
    ->ArgsProduct({{50, 100, 200}, {16, 45, 128}, {1, 4, 8, 16}, {0, 10, 30}});

/// Quantized rows over the same sweep axes; `prec` is the integer width
/// (16 or 8). The quantized kernel has no lane-width knob — its GEMM-shaped
/// lag pass always runs full kLagBlock blocks — so the B axis is dropped.
void BM_QuantScan(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const auto channels = static_cast<std::size_t>(state.range(1));
  const auto prec = static_cast<int>(state.range(2));
  const auto mask_pct = static_cast<int>(state.range(3));
  const Scan s = make_scan(window, channels, mask_pct);
  const QuantScan q(s);
  std::vector<double> scores(s.positions, 0.0);
  for (auto _ : state) {
    if (prec == 16) {
      core::quantized_correlation_batch<std::int16_t>(
          q.fixed_v16(s), 0, q.slide_v16(s), 0, s.positions, s.window,
          s.config, scores.data());
    } else {
      core::quantized_correlation_batch<std::int8_t>(
          q.fixed_v8(s), 0, q.slide_v8(s), 0, s.positions, s.window, s.config,
          scores.data());
    }
    benchmark::DoNotOptimize(scores.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.positions));
}
BENCHMARK(BM_QuantScan)
    ->ArgNames({"w", "k", "prec", "maskpct"})
    ->ArgsProduct({{50, 100, 200}, {16, 45, 128}, {16, 8}, {0, 10, 30}});

/// Wall-time of `reps` full scans at the given lane width, in ns/position.
double measure_ns_per_position(const Scan& s, std::size_t lanes,
                               std::size_t reps) {
  std::vector<double> scores(s.positions, 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    core::packed_correlation_batch_lanes(lanes, s.fixed(), 0, s.sliding(), 0,
                                         s.positions, s.window, s.config,
                                         scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return seconds * 1e9 / static_cast<double>(reps) /
         static_cast<double>(s.positions);
}

/// Paper-point (m=1000, w=100, k=45, 10% masked) batch-vs-scalar figure,
/// recorded as kernel.* gauges. Returns the speedup.
double record_paper_point() {
  const Scan s = make_scan(kPaperWindow, kPaperChannels, kPaperMaskPct);
  const std::size_t reps = bench::scaled(30);
  // Warm-up pass so first-touch and ifunc resolution stay out of the timing.
  measure_ns_per_position(s, core::kLagBlock, 1);
  const double scalar_ns = measure_ns_per_position(s, 1, reps);
  const double batch_ns = measure_ns_per_position(s, core::kLagBlock, reps);
  const double speedup = scalar_ns / batch_ns;
  auto& reg = obs::Registry::global();
  reg.gauge("kernel.paper.scalar_ns_per_pos").set(scalar_ns);
  reg.gauge("kernel.paper.batch_ns_per_pos").set(batch_ns);
  reg.gauge("kernel.paper.speedup").set(speedup);
  std::printf(
      "  paper point m=%zu w=%zu k=%zu mask=%d%%: scalar %.0f ns/pos, "
      "batch<%zu> %.0f ns/pos, speedup %.2fx\n",
      kContextMetres, kPaperWindow, kPaperChannels, kPaperMaskPct, scalar_ns,
      core::kLagBlock, batch_ns, speedup);
  return speedup;
}

/// Wall-time of `reps` full quantized scans at width T, in ns/position.
template <typename T>
double measure_quant_ns_per_position(const Scan& s, const QuantScan& q,
                                     std::size_t reps) {
  std::vector<double> scores(s.positions, 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    if constexpr (sizeof(T) == 2) {
      core::quantized_correlation_batch<std::int16_t>(
          q.fixed_v16(s), 0, q.slide_v16(s), 0, s.positions, s.window,
          s.config, scores.data());
    } else {
      core::quantized_correlation_batch<std::int8_t>(
          q.fixed_v8(s), 0, q.slide_v8(s), 0, s.positions, s.window, s.config,
          scores.data());
    }
    benchmark::DoNotOptimize(scores.data());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return seconds * 1e9 / static_cast<double>(reps) /
         static_cast<double>(s.positions);
}

std::size_t argmax_of(const std::vector<double>& scores) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return best;
}

struct QuantPoint {
  double int16_speedup = 0.0;
  double int16_maxerr = 0.0;
  bool argmax_ok = false;
};

/// Paper-point quantized-vs-float-batch figure. Timing gauges
/// (quant.paper.*_ns_per_pos, *_speedup) are machine-dependent; the
/// accuracy counters (quant.paper.*_maxerr_u6 = max |score delta| in
/// micro-units, quant.paper.argmax_match_*) are exact functions of the
/// seeded inputs, so the regression baseline pins them tightly.
QuantPoint record_quant_point() {
  const Scan s = make_scan(kPaperWindow, kPaperChannels, kPaperMaskPct);
  const QuantScan q(s);
  const std::size_t reps = bench::scaled(30);

  std::vector<double> fscores(s.positions), s16(s.positions), s8(s.positions);
  core::packed_correlation_batch_lanes(core::kLagBlock, s.fixed(), 0,
                                       s.sliding(), 0, s.positions, s.window,
                                       s.config, fscores.data());
  core::quantized_correlation_batch<std::int16_t>(q.fixed_v16(s), 0,
                                                  q.slide_v16(s), 0,
                                                  s.positions, s.window,
                                                  s.config, s16.data());
  core::quantized_correlation_batch<std::int8_t>(q.fixed_v8(s), 0,
                                                 q.slide_v8(s), 0,
                                                 s.positions, s.window,
                                                 s.config, s8.data());
  double maxerr16 = 0.0;
  double maxerr8 = 0.0;
  for (std::size_t i = 0; i < s.positions; ++i) {
    maxerr16 = std::max(maxerr16, std::abs(fscores[i] - s16[i]));
    maxerr8 = std::max(maxerr8, std::abs(fscores[i] - s8[i]));
  }
  const bool argmax16 = argmax_of(fscores) == argmax_of(s16);
  const bool argmax8 = argmax_of(fscores) == argmax_of(s8);

  // Warm-up passes keep first-touch and ifunc resolution out of the timing.
  measure_ns_per_position(s, core::kLagBlock, 1);
  measure_quant_ns_per_position<std::int16_t>(s, q, 1);
  measure_quant_ns_per_position<std::int8_t>(s, q, 1);
  const double float_ns = measure_ns_per_position(s, core::kLagBlock, reps);
  const double i16_ns = measure_quant_ns_per_position<std::int16_t>(s, q,
                                                                    reps);
  const double i8_ns = measure_quant_ns_per_position<std::int8_t>(s, q, reps);

  auto& reg = obs::Registry::global();
  reg.gauge("quant.paper.float_ns_per_pos").set(float_ns);
  reg.gauge("quant.paper.int16_ns_per_pos").set(i16_ns);
  reg.gauge("quant.paper.int8_ns_per_pos").set(i8_ns);
  reg.gauge("quant.paper.int16_speedup").set(float_ns / i16_ns);
  reg.gauge("quant.paper.int8_speedup").set(float_ns / i8_ns);
  reg.counter("quant.paper.positions").inc(s.positions);
  reg.counter("quant.paper.int16_maxerr_u6")
      .inc(static_cast<std::uint64_t>(std::lround(maxerr16 * 1e6)));
  reg.counter("quant.paper.int8_maxerr_u6")
      .inc(static_cast<std::uint64_t>(std::lround(maxerr8 * 1e6)));
  reg.counter("quant.paper.argmax_match_int16").inc(argmax16 ? 1 : 0);
  reg.counter("quant.paper.argmax_match_int8").inc(argmax8 ? 1 : 0);

  std::printf(
      "  quant paper point m=%zu w=%zu k=%zu mask=%d%%: float batch %.0f "
      "ns/pos, int16 %.0f ns/pos (%.2fx, maxerr %.3e, argmax %s), int8 "
      "%.0f ns/pos (%.2fx, maxerr %.3e, argmax %s)\n",
      kContextMetres, kPaperWindow, kPaperChannels, kPaperMaskPct, float_ns,
      i16_ns, float_ns / i16_ns, maxerr16, argmax16 ? "match" : "MISMATCH",
      i8_ns, float_ns / i8_ns, maxerr8, argmax8 ? "match" : "MISMATCH");
  return {float_ns / i16_ns, maxerr16, argmax16 && argmax8};
}

/// Per-stride covering-scan vs per-position measurement behind the float
/// path's strided-grid route (DESIGN §11): for each stride the contiguous
/// covering scan pays for every metre but runs at full block width, the
/// per-position path pays only for grid points but at scalar speed. The
/// crossover — the largest stride where covering still wins — is what
/// core::kCoveringScanMaxStrideM must match.
void measure_stride_crossover() {
  const Scan s = make_scan(kPaperWindow, kPaperChannels, kPaperMaskPct);
  const std::size_t reps = bench::scaled(10);
  std::vector<double> scores(s.positions, 0.0);
  // Warm-up.
  measure_ns_per_position(s, core::kLagBlock, 1);
  // Covering scan cost is stride-independent: every metre is scored at
  // block width regardless of which lanes land on the grid.
  const double covering_total =
      measure_ns_per_position(s, core::kLagBlock, reps) *
      static_cast<double>(s.positions);

  std::printf(
      "stride crossover at paper point m=%zu w=%zu k=%zu mask=%d%% "
      "(ns per GRID position):\n", kContextMetres, kPaperWindow,
      kPaperChannels, kPaperMaskPct);
  std::printf("  %-8s %14s %14s %10s\n", "stride", "covering", "per-pos",
              "winner");
  std::size_t crossover = 1;
  bool covering_streak = true;
  for (std::size_t stride = 2; stride <= 8; ++stride) {
    const std::size_t grid_count = (s.positions - 1) / stride + 1;
    const double covering_per_grid =
        covering_total / static_cast<double>(grid_count);
    double score_sink = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t g = 0; g < grid_count; ++g) {
        score_sink += core::packed_correlation(s.fixed(), 0, s.sliding(),
                                               g * stride, s.window,
                                               s.config);
      }
      benchmark::DoNotOptimize(score_sink);
    }
    const double perpos_per_grid =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() *
        1e9 / static_cast<double>(reps) / static_cast<double>(grid_count);
    const bool covering_wins = covering_per_grid < perpos_per_grid;
    if (covering_streak && covering_wins) crossover = stride;
    if (!covering_wins) covering_streak = false;
    std::printf("  %-8zu %14.0f %14.0f %10s\n", stride, covering_per_grid,
                perpos_per_grid, covering_wins ? "covering" : "per-pos");
  }
  std::printf(
      "measured covering-scan crossover: stride <= %zu (compiled "
      "kCoveringScanMaxStrideM = %zu %s)\n",
      crossover, core::kCoveringScanMaxStrideM,
      crossover == core::kCoveringScanMaxStrideM ? "- matches"
                                                 : "- UPDATE THE CONSTANT");
}

/// Sweep-shape counters: functions of the registered benchmark grid only,
/// so the committed baseline pins them exactly (a 2% counter diff catches
/// accidental sweep edits; timings never reach these).
void record_sweep_counters() {
  auto& reg = obs::Registry::global();
  std::uint64_t configs = 0;
  std::uint64_t positions = 0;
  std::uint64_t blocks = 0;
  for (const std::size_t w : {50, 100, 200}) {
    for (const std::size_t k : {16, 45, 128}) {
      (void)k;
      for (const std::size_t lanes : {1, 4, 8, 16}) {
        for (const int mask : {0, 10, 30}) {
          (void)mask;
          const std::uint64_t pos = kContextMetres - w + 1;
          ++configs;
          positions += pos;
          if (lanes == 1) {
            blocks += pos;
          } else {
            blocks += pos / lanes + (pos % lanes != 0 ? 1 : 0);
          }
        }
      }
    }
  }
  reg.counter("kernel.sweep_configs").inc(configs);
  reg.counter("kernel.sweep_positions").inc(positions);
  reg.counter("kernel.sweep_lane_blocks").inc(blocks);

  // Quantized sweep shape (BM_QuantScan grid; always full-block scans).
  std::uint64_t q_configs = 0;
  std::uint64_t q_positions = 0;
  for (const std::size_t w : {50, 100, 200}) {
    for (int axis = 0; axis < 3 * 2 * 3; ++axis) {  // k x prec x mask
      ++q_configs;
      q_positions += kContextMetres - w + 1;
    }
  }
  reg.counter("quant.sweep_configs").inc(q_configs);
  reg.counter("quant.sweep_positions").inc(q_positions);
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  bool quant_selfcheck = false;
  bool quant_report = false;
  bool stride_crossover = false;
  for (int i = 1; i < argc;) {
    const auto take = [&](bool* flag) {
      *flag = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    };
    if (std::strcmp(argv[i], "--selfcheck") == 0) {
      take(&selfcheck);
    } else if (std::strcmp(argv[i], "--quant-selfcheck") == 0) {
      take(&quant_selfcheck);
    } else if (std::strcmp(argv[i], "--quant-report") == 0) {
      take(&quant_report);
    } else if (std::strcmp(argv[i], "--stride-crossover") == 0) {
      take(&stride_crossover);
    } else {
      ++i;
    }
  }
  if (selfcheck) {
    // ctest perf smoke gate: the batched kernel must beat the per-position
    // scalar path by at least kSelfcheckFloor at the paper configuration.
    const double speedup = record_paper_point();
    const bool ok = speedup >= kSelfcheckFloor;
    std::printf("kernel selfcheck (floor %.1fx): %s\n", kSelfcheckFloor,
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  if (quant_selfcheck) {
    // ctest quantized gate: int16 must beat the FLOAT BATCH kernel by at
    // least kQuantSelfcheckFloor at the paper point, with the score error
    // inside the differential bound and the argmax unchanged.
    const QuantPoint p = record_quant_point();
    const bool fast = p.int16_speedup >= kQuantSelfcheckFloor;
    const bool accurate = p.int16_maxerr <= kQuantMaxErr16 && p.argmax_ok;
    std::printf(
        "quant selfcheck (floor %.1fx over float batch, maxerr <= %.0e): "
        "%s%s\n",
        kQuantSelfcheckFloor, kQuantMaxErr16,
        fast && accurate ? "PASS" : "FAIL",
        accurate ? "" : " (accuracy)");
    return fast && accurate ? 0 : 1;
  }
  if (quant_report) {
    // Deterministic quant_metrics section for the bench regression gate
    // (pass 8): accuracy counters are exact, timing gauges diffed
    // one-sided.
    record_quant_point();
    const auto path = rups::bench::write_metrics_json("syn_quant");
    std::printf("  metrics json: %s\n", path.c_str());
    return 0;
  }
  if (stride_crossover) {
    measure_stride_crossover();
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  record_sweep_counters();
  record_paper_point();
  record_quant_point();
  const auto path = rups::bench::write_metrics_json("syn_kernel");
  rups::bench::print_stage_breakdown();
  std::printf("  metrics json: %s\n", path.c_str());
  return 0;
}
