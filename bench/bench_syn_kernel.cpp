// Kernel-level microbenchmark of the lag-batched correlation kernel
// (Sec. V-A inner loop): one full sliding scan of a 1000 m context,
// scored through packed_correlation_batch_lanes at block widths
// B ∈ {1, 4, 8, 16} (1 = the per-position scalar path), swept over window
// length w ∈ {50, 100, 200}, channel count k ∈ {16, 45, 128} and
// masked-sample fraction ∈ {0, 0.1, 0.3}. The paper point m=1000 / w=100 /
// k=45 is additionally timed outside google-benchmark into deterministic
// kernel gauges + a batch-vs-scalar speedup figure; `--selfcheck` runs
// only that measurement and exits non-zero below a 2x floor (the ctest
// perf smoke gate).
//
// The emitted bench_out/syn_kernel_metrics.json becomes the baseline's
// kernel_metrics section: sweep-shape counters are exactly reproducible
// (diffed at 2%), per-position timing gauges are machine-dependent (diffed
// one-sided — only slowdowns fail).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "core/packed.hpp"
#include "util/hash_noise.hpp"
#include "util/rng.hpp"

namespace {

using namespace rups;

constexpr std::size_t kContextMetres = 1000;
constexpr std::size_t kPaperWindow = 100;
constexpr std::size_t kPaperChannels = 45;
constexpr int kPaperMaskPct = 10;
constexpr double kSelfcheckFloor = 2.0;

/// One prepared scan: a fixed checking window and a full sliding context,
/// packed, with identity row maps — exactly what SynSeeker::slide streams.
struct Scan {
  core::SubsetPack fixed_pack;
  core::SubsetPack slide_pack;
  std::vector<std::size_t> rows;
  std::size_t window = 0;
  std::size_t positions = 0;
  core::TrajectoryCorrelationConfig config{};

  [[nodiscard]] core::PackedView fixed() const {
    return {fixed_pack.span(), rows};
  }
  [[nodiscard]] core::PackedView sliding() const {
    return {slide_pack.span(), rows};
  }
};

core::ContextTrajectory synth(std::size_t metres, std::size_t channels,
                              std::int64_t road_offset, int mask_pct,
                              std::uint64_t seed) {
  const util::HashNoise chan_noise(0xC0FFEE);
  core::ContextTrajectory t(channels, metres);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < metres; ++i) {
    core::PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if (rng.uniform() * 100.0 < static_cast<double>(mask_pct)) continue;
      const util::LatticeField1D f(util::hash_combine(17, c), 8.0, 2);
      pv.set(c, static_cast<float>(
                    -95.0 +
                    40.0 * chan_noise.uniform(static_cast<std::int64_t>(c)) +
                    6.0 * f.value(static_cast<double>(
                              road_offset + static_cast<std::int64_t>(i))) +
                    rng.gaussian(0, 0.5)));
    }
    t.append(core::GeoSample{}, std::move(pv));
  }
  return t;
}

Scan make_scan(std::size_t window, std::size_t channels, int mask_pct) {
  Scan s;
  s.window = window;
  s.positions = kContextMetres - window + 1;
  s.rows.resize(channels);
  std::iota(s.rows.begin(), s.rows.end(), std::size_t{0});
  // The fixed window sits 50 road-metres into the sliding context, so the
  // scan crosses a genuine correlation peak like a real seek does.
  const auto fixed_t = synth(window, channels, 50, mask_pct, 7);
  const auto slide_t = synth(kContextMetres, channels, 0, mask_pct, 8);
  s.fixed_pack = core::SubsetPack(fixed_t, s.rows, 0, window);
  s.slide_pack = core::SubsetPack(slide_t, s.rows, 0, kContextMetres);
  return s;
}

void BM_KernelScan(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const auto channels = static_cast<std::size_t>(state.range(1));
  const auto lanes = static_cast<std::size_t>(state.range(2));
  const auto mask_pct = static_cast<int>(state.range(3));
  const Scan s = make_scan(window, channels, mask_pct);
  std::vector<double> scores(s.positions, 0.0);
  for (auto _ : state) {
    core::packed_correlation_batch_lanes(lanes, s.fixed(), 0, s.sliding(), 0,
                                         s.positions, s.window, s.config,
                                         scores.data());
    benchmark::DoNotOptimize(scores.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.positions));
}
BENCHMARK(BM_KernelScan)
    ->ArgNames({"w", "k", "B", "maskpct"})
    ->ArgsProduct({{50, 100, 200}, {16, 45, 128}, {1, 4, 8, 16}, {0, 10, 30}});

/// Wall-time of `reps` full scans at the given lane width, in ns/position.
double measure_ns_per_position(const Scan& s, std::size_t lanes,
                               std::size_t reps) {
  std::vector<double> scores(s.positions, 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    core::packed_correlation_batch_lanes(lanes, s.fixed(), 0, s.sliding(), 0,
                                         s.positions, s.window, s.config,
                                         scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return seconds * 1e9 / static_cast<double>(reps) /
         static_cast<double>(s.positions);
}

/// Paper-point (m=1000, w=100, k=45, 10% masked) batch-vs-scalar figure,
/// recorded as kernel.* gauges. Returns the speedup.
double record_paper_point() {
  const Scan s = make_scan(kPaperWindow, kPaperChannels, kPaperMaskPct);
  const std::size_t reps = bench::scaled(30);
  // Warm-up pass so first-touch and ifunc resolution stay out of the timing.
  measure_ns_per_position(s, core::kLagBlock, 1);
  const double scalar_ns = measure_ns_per_position(s, 1, reps);
  const double batch_ns = measure_ns_per_position(s, core::kLagBlock, reps);
  const double speedup = scalar_ns / batch_ns;
  auto& reg = obs::Registry::global();
  reg.gauge("kernel.paper.scalar_ns_per_pos").set(scalar_ns);
  reg.gauge("kernel.paper.batch_ns_per_pos").set(batch_ns);
  reg.gauge("kernel.paper.speedup").set(speedup);
  std::printf(
      "  paper point m=%zu w=%zu k=%zu mask=%d%%: scalar %.0f ns/pos, "
      "batch<%zu> %.0f ns/pos, speedup %.2fx\n",
      kContextMetres, kPaperWindow, kPaperChannels, kPaperMaskPct, scalar_ns,
      core::kLagBlock, batch_ns, speedup);
  return speedup;
}

/// Sweep-shape counters: functions of the registered benchmark grid only,
/// so the committed baseline pins them exactly (a 2% counter diff catches
/// accidental sweep edits; timings never reach these).
void record_sweep_counters() {
  auto& reg = obs::Registry::global();
  std::uint64_t configs = 0;
  std::uint64_t positions = 0;
  std::uint64_t blocks = 0;
  for (const std::size_t w : {50, 100, 200}) {
    for (const std::size_t k : {16, 45, 128}) {
      (void)k;
      for (const std::size_t lanes : {1, 4, 8, 16}) {
        for (const int mask : {0, 10, 30}) {
          (void)mask;
          const std::uint64_t pos = kContextMetres - w + 1;
          ++configs;
          positions += pos;
          if (lanes == 1) {
            blocks += pos;
          } else {
            blocks += pos / lanes + (pos % lanes != 0 ? 1 : 0);
          }
        }
      }
    }
  }
  reg.counter("kernel.sweep_configs").inc(configs);
  reg.counter("kernel.sweep_positions").inc(positions);
  reg.counter("kernel.sweep_lane_blocks").inc(blocks);
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfcheck") == 0) {
      selfcheck = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (selfcheck) {
    // ctest perf smoke gate: the batched kernel must beat the per-position
    // scalar path by at least kSelfcheckFloor at the paper configuration.
    const double speedup = record_paper_point();
    const bool ok = speedup >= kSelfcheckFloor;
    std::printf("kernel selfcheck (floor %.1fx): %s\n", kSelfcheckFloor,
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  record_sweep_counters();
  record_paper_point();
  const auto path = rups::bench::write_metrics_json("syn_kernel");
  rups::bench::print_stage_breakdown();
  std::printf("  metrics json: %s\n", path.c_str());
  return 0;
}
