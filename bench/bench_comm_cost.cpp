// Sec. V-B: responding time and system scalability. The paper: exchanging
// one kilometre of journey context is ~182 KB = ~130 WSM packets (1400 B
// payload, ~4 ms RTT) = ~0.52 s; with incremental tail updates after a SYN
// lock, per-query traffic collapses, enabling 10 Hz tracking.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"
#include "v2v/exchange.hpp"

using namespace rups;

namespace {

core::ContextTrajectory make_context(std::size_t metres,
                                     std::size_t channels) {
  core::ContextTrajectory traj(channels, metres);
  util::Rng rng(9);
  for (std::size_t i = 0; i < metres; ++i) {
    core::PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if (rng.bernoulli(0.75)) {
        pv.set(c, static_cast<float>(rng.uniform(-110.0, -50.0)));
      }
    }
    traj.append(core::GeoSample{0.3, static_cast<double>(i) / 10.0},
                std::move(pv));
  }
  return traj;
}

}  // namespace

int main() {
  bench::header("Sec V-B", "journey-context exchange cost over DSRC");

  const auto context = make_context(1000, 115);

  v2v::DsrcLink::Config link_cfg;
  link_cfg.rtt_s = 0.004;
  link_cfg.rtt_jitter_s = 0.0003;
  v2v::DsrcLink link(1, link_cfg);
  v2v::ExchangeSession session(&link);

  auto csv = bench::csv_out("comm_cost");
  csv.row(std::vector<std::string>{"transfer", "bytes", "packets",
                                   "duration_s"});

  // Full 1 km context.
  const auto full = session.exchange_full(context);
  std::printf("  full 1 km context : %7zu bytes  %4zu packets  %6.3f s\n",
              full.stats.payload_bytes, full.stats.packets,
              full.stats.duration_s);
  csv.row(std::vector<std::string>{
      "full_1km", std::to_string(full.stats.payload_bytes),
      std::to_string(full.stats.packets),
      std::to_string(full.stats.duration_s)});

  bench::paper_vs_measured("1 km context size", 182.0,
                           full.stats.payload_bytes / 1000.0, "KB");
  bench::paper_vs_measured("WSM packets for 1 km", 130.0,
                           static_cast<double>(full.stats.packets), "pkts");
  bench::paper_vs_measured("exchange time for 1 km", 0.52,
                           full.stats.duration_s, "s");

  // Incremental tracking at 10 Hz: a vehicle at 50 km/h covers ~1.4 m per
  // 0.1 s query period -> tail of ~2 metres per update.
  const auto tail =
      session.exchange_tail(context, context.first_metre() + 998);
  std::printf("  10 Hz tail update : %7zu bytes  %4zu packets  %6.4f s\n",
              tail.stats.payload_bytes, tail.stats.packets,
              tail.stats.duration_s);
  csv.row(std::vector<std::string>{
      "tail_2m", std::to_string(tail.stats.payload_bytes),
      std::to_string(tail.stats.packets),
      std::to_string(tail.stats.duration_s)});
  bench::note("tail update fits one WSM packet -> tracking at 10 Hz is feasible");

  // Heavy traffic: shrinking the context scope with the gap (Sec. V-B).
  std::printf("  context scope sweep (heavy-traffic strategy):\n");
  for (std::size_t scope : {100, 250, 500, 1000}) {
    const auto ctx = make_context(scope, 115);
    v2v::DsrcLink link2(2, link_cfg);
    v2v::ExchangeSession s2(&link2);
    const auto r = s2.exchange_full(ctx);
    std::printf("    %4zu m scope : %7zu bytes  %4zu packets  %6.3f s\n",
                scope, r.stats.payload_bytes, r.stats.packets,
                r.stats.duration_s);
    csv.row(std::vector<std::string>{
        "scope_" + std::to_string(scope),
        std::to_string(r.stats.payload_bytes), std::to_string(r.stats.packets),
        std::to_string(r.stats.duration_s)});
  }

  const bool pass = full.stats.packets >= 90 && full.stats.packets <= 160 &&
                    full.stats.duration_s > 0.3 &&
                    full.stats.duration_s < 0.8 && tail.stats.packets == 1;
  std::printf("  shape check: ~130 packets / ~0.5 s full, 1-packet tail: %s\n",
              pass ? "PASS" : "FAIL");

  bench::write_metrics_json("comm_cost");
  bench::print_stage_breakdown();
  return pass ? 0 : 1;
}
