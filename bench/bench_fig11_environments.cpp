// Fig 11: average RDE and SYN error with 95% confidence intervals under
// dynamic environments (2-lane suburb / 4-lane urban same lane / 8-lane
// urban same lane / 8-lane distinct lanes) x radio configurations
// (1f/1f, 4f/4f, 4c/4f). Selective average over 5 SYN points (Sec. VI-C).
//
// Expected shape: best accuracy with 4 front radios; stable (<~4.5 m)
// across environments in the paper's configuration; distinct lanes degrade
// SYN error to ~10 m.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_campaign.hpp"
#include "util/stats.hpp"

using namespace rups;

int main() {
  bench::header("Fig 11", "RDE and SYN error across environments x radios");

  struct EnvCase {
    const char* label;
    road::EnvironmentType env;
    bool distinct_lanes;
  };
  const EnvCase envs[] = {
      {"2-lane suburb", road::EnvironmentType::kTwoLaneSuburb, false},
      {"4-lane urban, same lane", road::EnvironmentType::kFourLaneUrban, false},
      {"8-lane urban, same lane", road::EnvironmentType::kEightLaneUrban, false},
      {"8-lane urban, distinct lanes", road::EnvironmentType::kEightLaneUrban,
       true},
  };
  struct RadioCase {
    const char* label;
    int front, rear;
    sensors::RadioPlacement rear_placement;
  };
  const RadioCase radios[] = {
      {"1 front, 1 front", 1, 1, sensors::RadioPlacement::kFrontPanel},
      {"4 front, 4 front", 4, 4, sensors::RadioPlacement::kFrontPanel},
      {"4 central, 4 front", 4, 4, sensors::RadioPlacement::kCenter},
  };

  const std::size_t queries = bench::scaled(120);
  auto csv = bench::csv_out("fig11_environments");
  csv.row(std::vector<std::string>{"environment", "radios", "mean_rde_m",
                                   "rde_ci95_m", "mean_syn_err_m",
                                   "syn_ci95_m"});

  double best_config_worst_rde = 0.0;   // max over envs for 4f/4f
  double best_config_sum = 0.0;
  double one_radio_sum = 0.0;
  double distinct_lane_syn = 0.0;
  std::uint64_t seed = 300;
  for (const auto& e : envs) {
    std::printf("  %s\n", e.label);
    for (const auto& r : radios) {
      auto scenario = bench::paper_scenario(seed++, e.env, e.distinct_lanes);
      scenario.rups.syn.syn_points = 5;
      bench::set_radios(scenario, r.front, r.rear, r.rear_placement);
      const auto result = bench::run(scenario, queries);

      util::RunningStats rde, syn;
      for (double v : result.rups_errors()) rde.add(v);
      for (double v : result.syn_errors()) syn.add(v);
      std::printf(
          "    %-20s RDE %6.2f +- %5.2f m   SYN err %6.2f +- %5.2f m   (n=%zu)\n",
          r.label, rde.mean(), rde.ci95_halfwidth(), syn.mean(),
          syn.ci95_halfwidth(), rde.count());
      csv.row(std::vector<std::string>{
          e.label, r.label, std::to_string(rde.mean()),
          std::to_string(rde.ci95_halfwidth()), std::to_string(syn.mean()),
          std::to_string(syn.ci95_halfwidth())});

      if (std::string(r.label) == "4 front, 4 front") {
        best_config_sum += rde.mean();
        if (!e.distinct_lanes && rde.mean() > best_config_worst_rde) {
          best_config_worst_rde = rde.mean();
        }
        if (e.distinct_lanes) distinct_lane_syn = syn.mean();
      }
      if (std::string(r.label) == "1 front, 1 front" && !e.distinct_lanes) {
        one_radio_sum += rde.mean();
      }
    }
  }

  bench::paper_vs_measured("worst same-lane mean RDE, 4f/4f", 4.5,
                           best_config_worst_rde, "m");
  bench::paper_vs_measured("distinct-lane SYN error, 4f/4f", 10.0,
                           distinct_lane_syn, "m");
  const bool pass = best_config_worst_rde < 8.0 &&
                    best_config_sum / 4.0 < one_radio_sum / 3.0 + 2.0 &&
                    distinct_lane_syn > best_config_worst_rde;
  std::printf("  shape check: stable same-lane accuracy, 4f best, distinct lanes degrade: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
