// Fig 12: RUPS vs GPS relative distance error CDFs across four urban
// environments — 2-lane suburb, 4-lane urban, 8-lane urban, under elevated
// roads. Paper means (m):
//   RUPS: 3.4 / 2.3 / 4.2 / 6.9      GPS: 4.2 / 9.9 / 9.8 / 21.1
// giving the headline "RUPS outperforms GPS by 2.7x on average".

#include <cstdio>
#include <string>
#include <vector>

#include "bench_campaign.hpp"
#include "util/stats.hpp"

using namespace rups;

int main() {
  bench::header("Fig 12", "RUPS vs GPS across urban environments");

  struct EnvCase {
    const char* label;
    road::EnvironmentType env;
    double paper_rups_m;
    double paper_gps_m;
  };
  const EnvCase envs[] = {
      {"2-lane suburb", road::EnvironmentType::kTwoLaneSuburb, 3.4, 4.2},
      {"4-lane urban", road::EnvironmentType::kFourLaneUrban, 2.3, 9.9},
      {"8-lane urban", road::EnvironmentType::kEightLaneUrban, 4.2, 9.8},
      {"under elevated", road::EnvironmentType::kUnderElevated, 6.9, 21.1},
  };

  const std::size_t queries = bench::scaled(250);
  auto csv = bench::csv_out("fig12_vs_gps");
  csv.row(std::vector<std::string>{"environment", "scheme", "rde_m"});

  double ratio_sum = 0.0;
  int ratio_n = 0;
  bool rups_beats_gps_everywhere_urban = true;
  double rups_under_elevated = 0.0, gps_under_elevated = 0.0;
  double rups_sum = 0.0;

  std::uint64_t seed = 500;
  for (const auto& e : envs) {
    auto scenario = bench::paper_scenario(seed++, e.env);
    scenario.rups.syn.syn_points = 5;
    const auto result = bench::run(scenario, queries);

    const auto rups_err = result.rups_errors();
    const auto gps_err = result.gps_errors();
    for (double v : rups_err) {
      csv.row(std::vector<std::string>{e.label, "RUPS", std::to_string(v)});
    }
    for (double v : gps_err) {
      csv.row(std::vector<std::string>{e.label, "GPS", std::to_string(v)});
    }
    const double rups_mean = util::mean(rups_err);
    const double gps_mean = util::mean(gps_err);
    util::EmpiricalCdf rc{std::vector<double>(rups_err)};
    util::EmpiricalCdf gc{std::vector<double>(gps_err)};
    std::printf(
        "  %-16s RUPS mean %5.2f m (p90 %5.2f)   GPS mean %5.2f m (p90 %5.2f)"
        "   avail %.2f\n",
        e.label, rups_mean, rups_err.empty() ? 0.0 : rc.quantile(0.9),
        gps_mean, gps_err.empty() ? 0.0 : gc.quantile(0.9),
        result.rups_availability());
    bench::paper_vs_measured((std::string("  RUPS, ") + e.label).c_str(),
                             e.paper_rups_m, rups_mean, "m");
    bench::paper_vs_measured((std::string("  GPS,  ") + e.label).c_str(),
                             e.paper_gps_m, gps_mean, "m");

    if (gps_mean > 0.0 && rups_mean > 0.0) {
      ratio_sum += gps_mean / rups_mean;
      ++ratio_n;
    }
    rups_sum += rups_mean;
    if (e.env != road::EnvironmentType::kTwoLaneSuburb &&
        rups_mean >= gps_mean) {
      rups_beats_gps_everywhere_urban = false;
    }
    if (e.env == road::EnvironmentType::kUnderElevated) {
      rups_under_elevated = rups_mean;
      gps_under_elevated = gps_mean;
    }
  }

  const double mean_ratio = ratio_n ? ratio_sum / ratio_n : 0.0;
  bench::paper_vs_measured("GPS/RUPS error ratio (average)", 2.7, mean_ratio,
                           "x");
  bench::paper_vs_measured("RUPS mean over all environments", 4.2,
                           rups_sum / 4.0, "m");
  const bool pass = rups_beats_gps_everywhere_urban && mean_ratio > 1.5 &&
                    gps_under_elevated > 2.0 * rups_under_elevated;
  std::printf("  shape check: RUPS robust, GPS collapses under elevated, ratio >~2x: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
