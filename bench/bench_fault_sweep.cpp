// Accuracy vs channel quality (paper Secs. V-B / VI-E): drive ONE convoy
// and, at every query instant, run the trajectory exchange through each
// fault profile side by side — same sender context, same ground truth, so
// the profiles differ only in what survives the channel. The rear vehicle
// estimates from its decoded receiver-side copy, exactly like run_campaign.
//
// Two enforced properties (nonzero exit on violation):
//   1. urban (~5% burst loss): end-to-end p95 distance error within 10% of
//      the clean-channel baseline — bounded retransmission absorbs the
//      paper's measured urban loss without accuracy cost.
//   2. blackout (loss_rate = 1.0): terminates, every exchange kFailed,
//      zero estimates — the bounded-retry regression guard at bench scale.
//
// The query count is fixed (RUPS_BENCH_SCALE is ignored) so the v2v.*
// counters in bench_out/fault_sweep_metrics.json are deterministic and can
// be diffed tightly by scripts/bench_regression.sh (fault_metrics section).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/campaign.hpp"
#include "sim/convoy_sim.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"
#include "v2v/channel.hpp"
#include "v2v/exchange.hpp"
#include "v2v/link.hpp"

using namespace rups;

namespace {

struct Profile {
  std::string name;
  v2v::FaultConfig fault;

  std::unique_ptr<v2v::DsrcLink> link;
  std::unique_ptr<v2v::FaultyChannel> channel;
  std::unique_ptr<v2v::ExchangeSession> session;
  std::unique_ptr<sim::V2vReceiver> receiver;

  std::vector<double> errors;
  std::size_t hits = 0;
  std::size_t delivered = 0;
  std::size_t degraded = 0;
  std::size_t failed = 0;
};

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return std::nan("");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (pos - static_cast<double>(lo)) * (v[hi] - v[lo]);
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return std::nan("");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

int main() {
  bench::header("Sec V-B/VI-E", "accuracy vs channel quality (fault sweep)");

  // Fixed size: NOT bench::scaled — counter determinism for the regression
  // gate matters more than a faster smoke run here.
  constexpr std::size_t kQueries = 30;
  constexpr double kWarmupS = 350.0;
  constexpr double kIntervalS = 3.0;

  sim::Scenario scenario =
      sim::Scenario::two_car(21, road::EnvironmentType::kFourLaneUrban);
  scenario.route_length_m = 9'000.0;
  sim::ConvoySimulation sim(scenario);

  const auto& rups_cfg = sim.rig(0).engine().config();

  std::vector<Profile> profiles;
  auto add = [&](std::string name, v2v::FaultConfig fault) {
    Profile p;
    p.name = std::move(name);
    p.fault = fault;
    profiles.push_back(std::move(p));
  };
  add("clean", v2v::FaultConfig::clean());
  add("urban", v2v::FaultConfig::urban());
  add("congested", v2v::FaultConfig::congested());
  add("tunnel", v2v::FaultConfig::tunnel());
  for (double rate : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "iid_%02d", static_cast<int>(rate * 100));
    add(buf, v2v::FaultConfig::iid(rate));
  }
  add("blackout", v2v::FaultConfig::iid(1.0));

  for (std::size_t i = 0; i < profiles.size(); ++i) {
    auto& p = profiles[i];
    // Every profile gets the same link seed (identical MAC timing) and a
    // profile-specific channel seed.
    p.link = std::make_unique<v2v::DsrcLink>(0xB0B5'CAFEULL);
    p.channel = std::make_unique<v2v::FaultyChannel>(
        util::hash_combine(0xC4A77E1ULL, i), p.fault);
    p.session = std::make_unique<v2v::ExchangeSession>(
        p.link.get(), p.channel.get(), v2v::ExchangeConfig{});
    p.receiver = std::make_unique<sim::V2vReceiver>(
        rups_cfg.channels, rups_cfg.context_capacity_m);
  }

  sim.run_until(kWarmupS);
  std::size_t issued = 0;
  std::vector<double> ideal_errors;  // sender-side search, no exchange at all
  std::size_t ideal_hits = 0;
  for (std::size_t q = 0; q < kQueries && !sim.finished(); ++q) {
    sim.run_until(kWarmupS + static_cast<double>(q) * kIntervalS);
    const auto& front = sim.rig(0).engine().context();
    ++issued;
    if (const auto err = sim.query(1, 0).rups_error()) {
      ++ideal_hits;
      ideal_errors.push_back(*err);
    }
    for (auto& p : profiles) {
      const bool full = !p.receiver->have_full;
      const auto exchanged =
          full ? p.session->exchange_full(front)
               : p.session->exchange_tail(front, p.receiver->synced_metre);
      (void)p.receiver->ingest(exchanged, full);
      switch (exchanged.outcome) {
        case v2v::ExchangeOutcome::kDelivered: ++p.delivered; break;
        case v2v::ExchangeOutcome::kDegraded: ++p.degraded; break;
        case v2v::ExchangeOutcome::kFailed: ++p.failed; break;
      }
      const auto result = sim.query(1, 0, p.receiver->received);
      if (const auto err = result.rups_error()) {
        ++p.hits;
        p.errors.push_back(*err);
      }
    }
  }

  auto csv = bench::csv_out("fault_sweep");
  csv.row(std::vector<std::string>{"profile", "queries", "hits", "delivered",
                                   "degraded", "failed", "mean_err_m",
                                   "p50_err_m", "p95_err_m"});
  auto& reg = obs::Registry::global();
  std::printf("  %-10s %5s %5s %5s %5s %5s %9s %9s %9s\n", "profile", "qry",
              "hits", "dlv", "deg", "fail", "mean(m)", "p50(m)", "p95(m)");
  std::printf("  %-10s %5zu %5zu %5s %5s %5s %9.3f %9.3f %9.3f\n", "ideal",
              issued, ideal_hits, "-", "-", "-", mean(ideal_errors),
              quantile(ideal_errors, 0.50), quantile(ideal_errors, 0.95));
  csv.row(std::vector<std::string>{
      "ideal", std::to_string(issued), std::to_string(ideal_hits), "-", "-",
      "-", std::to_string(mean(ideal_errors)),
      std::to_string(quantile(ideal_errors, 0.50)),
      std::to_string(quantile(ideal_errors, 0.95))});
  if (!ideal_errors.empty()) {
    reg.gauge("fault.p95_err_m.ideal").set(quantile(ideal_errors, 0.95));
  }
  for (auto& p : profiles) {
    const double p50 = quantile(p.errors, 0.50);
    const double p95 = quantile(p.errors, 0.95);
    const double avg = mean(p.errors);
    std::printf("  %-10s %5zu %5zu %5zu %5zu %5zu %9.3f %9.3f %9.3f\n",
                p.name.c_str(), issued, p.hits, p.delivered, p.degraded,
                p.failed, avg, p50, p95);
    csv.row(std::vector<std::string>{
        p.name, std::to_string(issued), std::to_string(p.hits),
        std::to_string(p.delivered), std::to_string(p.degraded),
        std::to_string(p.failed), std::to_string(avg), std::to_string(p50),
        std::to_string(p95)});
    if (!p.errors.empty()) {
      reg.gauge("fault.p95_err_m." + p.name).set(p95);
    }
    reg.gauge("fault.hits." + p.name).set(static_cast<double>(p.hits));
    reg.gauge("fault.failed." + p.name).set(static_cast<double>(p.failed));
  }

  bool pass = issued == kQueries;
  if (!pass) std::printf("  FAIL: route ended before %zu queries\n", kQueries);

  const auto* clean = &profiles[0];
  const auto* urban = &profiles[1];
  const double clean_p95 = quantile(clean->errors, 0.95);
  const double urban_p95 = quantile(urban->errors, 0.95);
  // 10% relative budget with a 0.25 m absolute floor: at sub-metre p95 the
  // relative bound alone would be tighter than the codec quantization step.
  const double budget = std::max(clean_p95 * 1.10, clean_p95 + 0.25);
  std::printf("  urban-vs-clean p95 gate: clean %.3f m, urban %.3f m, "
              "budget %.3f m\n", clean_p95, urban_p95, budget);
  if (clean->errors.empty() || clean->hits + 2 < issued) {
    std::printf("  FAIL: clean channel should resolve nearly every query\n");
    pass = false;
  }
  if (urban->errors.empty() || !(urban_p95 <= budget)) {
    std::printf("  FAIL: urban p95 outside the 10%% degradation budget\n");
    pass = false;
  }

  const auto* blackout = &profiles.back();
  if (blackout->failed != issued || blackout->hits != 0) {
    std::printf("  FAIL: blackout must fail every exchange and yield no "
                "estimates (failed %zu/%zu, hits %zu)\n",
                blackout->failed, issued, blackout->hits);
    pass = false;
  }
  bench::note("blackout terminating at all is the loss_rate=1.0 regression");

  bench::write_metrics_json("fault_sweep");
  bench::print_stage_breakdown();
  std::printf("  fault degradation gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
