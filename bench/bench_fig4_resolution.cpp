// Fig 4: fine resolution — relative change (eq. 3, linear power) of power
// vector pairs separated by 1..120 m on the same road. The paper samples
// 1000 power vectors; the key observation is a mean relative change >= ~0.4
// already at 1 m separation, rising gently with distance.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gsm/gsm_field.hpp"
#include "road/road_network.hpp"
#include "sim/survey.hpp"

using namespace rups;

int main() {
  bench::header("Fig 4", "relative change of power vectors over distance");

  const auto plan = gsm::ChannelPlan::full_r_gsm_900();
  gsm::GsmField field(2016, plan);
  sim::GsmSurvey survey(&field);
  const auto net = road::RoadNetwork::generate(
      9, 50, 150.0,
      {road::EnvironmentType::kDowntown, road::EnvironmentType::kFourLaneUrban,
       road::EnvironmentType::kTwoLaneSuburb});

  const std::size_t samples = bench::scaled(500);
  auto csv = bench::csv_out("fig4_resolution");
  csv.row(std::vector<std::string>{"distance_m", "mean_relative_change"});

  std::printf("  %-12s %s\n", "distance(m)", "mean relative change");
  double at_1m = 0.0, at_120m = 0.0;
  for (double d : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0}) {
    const double rel = survey.mean_relative_change(net, d, samples, 31);
    std::printf("  %-12.0f %.3f\n", d, rel);
    csv.row(std::vector<double>{d, rel});
    if (d == 1.0) at_1m = rel;
    if (d == 120.0) at_120m = rel;
  }

  bench::paper_vs_measured("relative change at 1 m", 0.40, at_1m, "");
  bench::paper_vs_measured("relative change at 120 m", 0.60, at_120m, "");
  const bool pass = at_1m >= 0.3 && at_120m >= at_1m;
  std::printf("  shape check: >=~0.4 at 1 m, gently rising: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
