// Ablation: the two-scale shadowing design of the radio-environment model
// (DESIGN.md). The synthetic field composes a LONG (~45 m) and a SHORT
// (~1.6 m) spatially correlated component; this ablation disables each and
// verifies the Sec. III properties degrade exactly as the design argues:
//   * without the short scale, fine resolution (Fig 4) collapses — power
//     vectors 1 m apart look identical, so metre-level SYN alignment has
//     nothing to lock on;
//   * without the long scale, windows lose their coarse profile and
//     geographical uniqueness (Fig 3) weakens.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gsm/gsm_field.hpp"
#include "road/road_network.hpp"
#include "sim/survey.hpp"
#include "util/stats.hpp"

using namespace rups;

namespace {

struct Stats {
  double rel_change_1m = 0.0;
  double uniq_same = 0.0;
  double uniq_diff = 0.0;
};

Stats measure(const gsm::GsmEnvProfile* override_profile) {
  const auto plan = gsm::ChannelPlan::evaluation_subset(1, 80);
  gsm::GsmField field(99, plan);
  if (override_profile != nullptr) {
    field.set_profile_override(*override_profile);
  }
  sim::GsmSurvey survey(&field);
  const auto net = road::RoadNetwork::generate(
      12, 40, 150.0, {road::EnvironmentType::kFourLaneUrban});
  Stats s;
  s.rel_change_1m = survey.mean_relative_change(net, 1.0, 200, 5);
  s.uniq_same =
      util::mean(survey.uniqueness_correlations(net, true, 600.0, 150.0, 20, 6));
  s.uniq_diff = util::mean(
      survey.uniqueness_correlations(net, false, 600.0, 150.0, 20, 6));
  return s;
}

}  // namespace

int main() {
  bench::header("Ablation", "two-scale shadowing of the radio field");

  const gsm::GsmEnvProfile base =
      gsm::env_profile(road::EnvironmentType::kFourLaneUrban);
  gsm::GsmEnvProfile no_short = base;
  no_short.shadow_short_sigma_db = 0.0;
  gsm::GsmEnvProfile no_long = base;
  no_long.shadow_long_sigma_db = 0.0;

  struct Case {
    const char* label;
    const gsm::GsmEnvProfile* profile;
  };
  const Case cases[] = {
      {"both scales (default)", nullptr},
      {"no short scale", &no_short},
      {"no long scale", &no_long},
  };

  auto csv = bench::csv_out("ablation_field_scales");
  csv.row(std::vector<std::string>{"case", "rel_change_1m", "uniq_same",
                                   "uniq_diff"});
  std::printf("  %-24s %-16s %-12s %s\n", "case", "rel.change @1m",
              "same-road", "diff-road");
  std::vector<Stats> results;
  for (const auto& c : cases) {
    const Stats s = measure(c.profile);
    results.push_back(s);
    std::printf("  %-24s %-16.3f %-12.3f %.3f\n", c.label, s.rel_change_1m,
                s.uniq_same, s.uniq_diff);
    csv.row(std::vector<std::string>{
        c.label, std::to_string(s.rel_change_1m), std::to_string(s.uniq_same),
        std::to_string(s.uniq_diff)});
  }

  const Stats& both = results[0];
  const Stats& ns = results[1];
  const Stats& nl = results[2];
  const bool pass =
      // Short scale carries fine resolution.
      ns.rel_change_1m < 0.5 * both.rel_change_1m &&
      // Long scale carries a large part of the same/diff separation.
      (nl.uniq_same - nl.uniq_diff) < (both.uniq_same - both.uniq_diff) &&
      // The default satisfies the Sec. III requirements.
      both.rel_change_1m >= 0.3 && both.uniq_same - both.uniq_diff > 0.5;
  std::printf("  shape check: short scale => resolution, long scale => uniqueness: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
