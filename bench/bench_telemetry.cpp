// Telemetry overhead gate: the full dimensional-telemetry stack (labeled
// families + windowed series collection + span tracing into a Chrome
// trace sink) must be effectively free at fleet scale, and must never
// change results. Runs the warm N=16 fleet campaign twice per mode on
// fresh, identically-seeded simulations:
//
//   off: series collection disabled, no trace sink (families and timers
//        still run — they are always-on in this build)
//   on:  series collector on the round cadence + every span written to a
//        Chrome trace file
//
// and fails when estimates differ in any bit, or when the best-of-runs
// telemetry-on wall-clock exceeds the telemetry-off one by more than the
// ceiling (generous vs the 5% target because this container's timing is
// noisy; the printed ratio is the number to watch).
//
// Also emits the telemetry baseline candidate: the final metrics snapshot
// with the collected series spliced in as a "series" member
// (bench_out/telemetry_metrics.json, replayed by bench_regression.sh).
//
// Round count is fixed (RUPS_BENCH_SCALE is ignored) so every counter and
// series rate in the baseline section is deterministic. --report-only
// skips the off runs and the gate: one telemetry-on campaign, artefacts
// only (what the regression gate uses).

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "sim/fleet_sim.hpp"

namespace {

using namespace rups;

constexpr std::size_t kVehicles = 17;  // ego + 16 neighbours
constexpr std::size_t kRounds = 16;
constexpr std::uint64_t kSeed = 7;
constexpr double kOverheadCeiling = 1.25;

sim::FleetCampaignConfig make_config(bool telemetry) {
  sim::FleetCampaignConfig cfg;
  cfg.base.max_queries = kRounds;  // fixed: deterministic baseline counters
  cfg.base.interval_s = 3.0;
  cfg.base.series.enabled = telemetry;
  cfg.base.series.window_s = 15.0;
  return cfg;
}

struct RunResult {
  double seconds = 0.0;
  sim::FleetCampaignResult campaign;
};

RunResult run_once(bool telemetry) {
  sim::Scenario scenario = sim::Scenario::fleet(
      kSeed, road::EnvironmentType::kFourLaneUrban, kVehicles, /*gap_m=*/25.0);
  scenario.route_length_m = 9'000.0;
  const sim::FleetCampaignConfig cfg = make_config(telemetry);
  sim::FleetSimulation fleet(scenario, cfg);

  RunResult out;
  const auto started = std::chrono::steady_clock::now();
  out.campaign = sim::run_fleet_campaign(fleet, cfg);
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              started)
                    .count();
  return out;
}

/// Estimates (and the SYN points they came from) must match bit for bit:
/// telemetry may cost time, never accuracy.
bool same_estimates(const sim::FleetCampaignResult& a,
                    const sim::FleetCampaignResult& b) {
  if (a.rounds.size() != b.rounds.size()) return false;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const auto& xs = a.rounds[r].outcomes;
    const auto& ys = b.rounds[r].outcomes;
    if (xs.size() != ys.size()) return false;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const auto& x = xs[i].result;
      const auto& y = ys[i].result;
      if (xs[i].neighbour_index != ys[i].neighbour_index) return false;
      if (x.estimate.has_value() != y.estimate.has_value()) return false;
      if (x.estimate.has_value() &&
          (x.estimate->distance_m != y.estimate->distance_m ||
           x.estimate->confidence != y.estimate->confidence ||
           x.estimate->syn_count != y.estimate->syn_count)) {
        return false;
      }
      if (x.syn_points.size() != y.syn_points.size()) return false;
      for (std::size_t s = 0; s < x.syn_points.size(); ++s) {
        if (x.syn_points[s].index_a != y.syn_points[s].index_a ||
            x.syn_points[s].index_b != y.syn_points[s].index_b ||
            x.syn_points[s].correlation != y.syn_points[s].correlation) {
          return false;
        }
      }
    }
  }
  return true;
}

/// The committed baseline shape: one snapshot object with the windowed
/// series spliced in as a "series" member, so obs_diff reads counters and
/// series columns from the same --section.
void write_telemetry_json(const sim::FleetCampaignResult& result) {
  std::filesystem::create_directories("bench_out");
  std::string json = result.metrics.to_json();
  const std::size_t brace = json.rfind('}');
  std::string out = json.substr(0, brace);
  while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
    out.pop_back();
  }
  out += ",\n  \"series\": ";
  std::string series = result.series.to_json();
  while (!series.empty() && series.back() == '\n') series.pop_back();
  out += series;
  out += "\n}\n";
  std::ofstream file("bench_out/telemetry_metrics.json");
  file << out;
  std::printf("  metrics json: bench_out/telemetry_metrics.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool report_only =
      argc > 1 && std::strcmp(argv[1], "--report-only") == 0;
  bench::header("telemetry",
                "dimensional telemetry overhead (warm fleet, N=16)");
  std::printf("  %zu vehicles, %zu rounds, clean channel, serial batches\n",
              kVehicles, kRounds);

  // One trace sink for every telemetry-on run; detached during off runs so
  // spans are dropped at the emit check (the off configuration).
  auto sink = std::make_unique<obs::ChromeTraceSink>(
      "bench_out/telemetry_trace.json");
  std::filesystem::create_directories("bench_out");

  if (report_only) {
    obs::set_trace_sink(sink->ok() ? sink.get() : nullptr);
    const RunResult on = run_once(/*telemetry=*/true);
    obs::set_trace_sink(nullptr);
    std::printf("  report-only: %zu rounds, %zu series windows, %.2f s\n",
                on.campaign.rounds.size(), on.campaign.series.windows(),
                on.seconds);
    write_telemetry_json(on.campaign);
    return on.campaign.rounds.empty() || on.campaign.series.empty() ? 1 : 0;
  }

  // Interleaved best-of-2 per mode: alternating absorbs slow drift in
  // container load better than back-to-back pairs.
  double best_off = 0.0;
  double best_on = 0.0;
  std::optional<RunResult> last_off;
  std::optional<RunResult> last_on;
  for (int rep = 0; rep < 2; ++rep) {
    RunResult off = run_once(/*telemetry=*/false);
    obs::set_trace_sink(sink->ok() ? sink.get() : nullptr);
    RunResult on = run_once(/*telemetry=*/true);
    obs::set_trace_sink(nullptr);
    std::printf("  rep %d: off %.3f s | on %.3f s (%zu windows)\n", rep,
                off.seconds, on.seconds, on.campaign.series.windows());
    best_off = best_off == 0.0 ? off.seconds : std::min(best_off, off.seconds);
    best_on = best_on == 0.0 ? on.seconds : std::min(best_on, on.seconds);
    last_off = std::move(off);
    last_on = std::move(on);
  }

  const bool identical = same_estimates(last_off->campaign, last_on->campaign);
  const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;
  std::printf("\n");
  bench::paper_vs_measured("telemetry-on / telemetry-off wall clock", 1.05,
                           ratio, "x");
  std::printf("  estimates bit-identical on vs off: %s\n",
              identical ? "PASS" : "FAIL");
  std::printf("  overhead ceiling (noise-tolerant): %.2fx -> %s\n",
              kOverheadCeiling, ratio <= kOverheadCeiling ? "PASS" : "FAIL");

  write_telemetry_json(last_on->campaign);
  const bool ok = identical && ratio <= kOverheadCeiling &&
                  !last_on->campaign.series.empty();
  std::printf("telemetry overhead: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
