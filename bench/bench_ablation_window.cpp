// Ablation: checking-window LENGTH and the adaptive short-context window
// (paper Sec. V-C). Longer windows discriminate better but demand more
// context (a vehicle that just turned onto a road cannot answer until it
// has window_m metres); the adaptive window trades a relaxed threshold for
// fast first answers after a turn.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_campaign.hpp"
#include "util/stats.hpp"

using namespace rups;

namespace {

/// Fraction of queries answered when the rear car has only `context_m`
/// metres of context (simulating a fresh turn onto the road).
double short_context_availability(std::size_t context_m, bool adaptive,
                                  std::size_t queries) {
  auto scenario =
      bench::paper_scenario(63, road::EnvironmentType::kFourLaneUrban);
  scenario.rups.context_capacity_m = context_m;  // bounded context = freshly turned
  scenario.rups.syn.adaptive_window = adaptive;
  sim::ConvoySimulation sim(scenario);
  sim::CampaignConfig cfg;
  cfg.max_queries = queries;
  return sim::run_campaign(sim, cfg).rups_availability();
}

}  // namespace

int main() {
  bench::header("Ablation", "window length + adaptive short-context window");

  const std::size_t queries = bench::scaled(100);
  auto csv = bench::csv_out("ablation_window");
  csv.row(std::vector<std::string>{"window_m", "mean_rde_m", "availability"});

  std::printf("  window length sweep (full 1000 m context):\n");
  std::printf("  %-10s %-12s %s\n", "w (m)", "mean RDE(m)", "availability");
  std::vector<double> rde_by_w;
  for (std::size_t w : {15UL, 30UL, 85UL, 150UL}) {
    auto scenario =
        bench::paper_scenario(64, road::EnvironmentType::kEightLaneUrban);
    scenario.rups.syn.window_m = w;
    sim::ConvoySimulation sim(scenario);
    sim::CampaignConfig cfg;
    cfg.max_queries = queries;
    const auto result = sim::run_campaign(sim, cfg);
    util::RunningStats r;
    for (double e : result.rups_errors()) r.add(e);
    std::printf("  %-10zu %-12.2f %.2f\n", w, r.mean(),
                result.rups_availability());
    csv.row(std::vector<std::string>{std::to_string(w),
                                     std::to_string(r.mean()),
                                     std::to_string(result.rups_availability())});
    rde_by_w.push_back(r.mean());
  }

  std::printf("\n  short context (vehicle just turned; 30 m of context):\n");
  const double avail_fixed = short_context_availability(30, false, queries);
  const double avail_adaptive = short_context_availability(30, true, queries);
  std::printf("    fixed 85 m window    : availability %.2f\n", avail_fixed);
  std::printf("    adaptive window      : availability %.2f\n",
              avail_adaptive);
  csv.row(std::vector<std::string>{"short_fixed", "-",
                                   std::to_string(avail_fixed)});
  csv.row(std::vector<std::string>{"short_adaptive", "-",
                                   std::to_string(avail_adaptive)});
  bench::note("paper Sec V-C: a flexible window lets a vehicle answer fast"
              " right after entering a road");

  // Expected shape: tiny windows are worse than the paper's 85 m; the
  // adaptive window rescues availability for short contexts where the
  // fixed window cannot answer at all.
  // Both cars have only 30 m of context, so even the adaptive window can
  // answer only a minority of queries — but the fixed window answers none.
  const bool pass = rde_by_w[0] >= rde_by_w[2] - 0.5 && avail_fixed < 0.05 &&
                    avail_adaptive > 0.15;
  std::printf("  shape check: 85 m window solid, adaptive rescues short contexts: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
