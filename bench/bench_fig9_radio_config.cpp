// Fig 9: CDFs of SYN point distance error for varying numbers and
// placements of GSM scanning radios — {1 front/1 front, 2f/2f, 4f/4f,
// 4 central/4 front}. Paper setup: consistency threshold 1.2, checking
// window top-45 channels x 85 m, 1000 query points.
//
// Expected shape: more radios -> smaller SYN errors; central placement
// clearly worse than front (paper: only ~75% of central-radio SYN points
// are under 10 m).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_campaign.hpp"
#include "util/stats.hpp"

using namespace rups;

int main() {
  bench::header("Fig 9", "SYN point error vs radio count and placement");

  struct Config {
    const char* label;
    int front_radios;
    int rear_radios;
    sensors::RadioPlacement rear_placement;
  };
  const Config configs[] = {
      {"4 front radios, 4 front radios", 4, 4,
       sensors::RadioPlacement::kFrontPanel},
      {"4 central radios, 4 front radios", 4, 4,
       sensors::RadioPlacement::kCenter},
      {"2 front radios, 2 front radios", 2, 2,
       sensors::RadioPlacement::kFrontPanel},
      {"1 front radio, 1 front radio", 1, 1,
       sensors::RadioPlacement::kFrontPanel},
  };

  const std::size_t queries = bench::scaled(300);
  auto csv = bench::csv_out("fig9_radio_config");
  csv.row(std::vector<std::string>{"config", "syn_error_m"});

  std::vector<double> p_under_10;
  std::vector<double> means;
  std::vector<double> medians;
  for (const auto& c : configs) {
    auto scenario =
        bench::paper_scenario(41, road::EnvironmentType::kFourLaneUrban);
    bench::set_radios(scenario, c.front_radios, c.rear_radios,
                      c.rear_placement);
    const auto result = bench::run(scenario, queries);
    const auto errors = result.syn_errors();
    for (double e : errors) {
      csv.row(std::vector<std::string>{c.label, std::to_string(e)});
    }
    util::EmpiricalCdf cdf{std::vector<double>(errors)};
    const double under10 = errors.empty() ? 0.0 : cdf.at(10.0);
    p_under_10.push_back(under10);
    means.push_back(util::mean(errors));
    medians.push_back(errors.empty() ? 0.0 : cdf.quantile(0.5));
    std::printf("  %-34s n=%4zu  mean %6.2f m  median %6.2f m  P(err<10m) %.2f\n",
                c.label, errors.size(), util::mean(errors),
                errors.empty() ? 0.0 : cdf.quantile(0.5), under10);
  }

  bench::paper_vs_measured("P(SYN err < 10 m), 4 central radios", 0.75,
                           p_under_10[1], "");
  // Shape (medians — the means are outlier-driven): 4 front best, 1 front
  // worst among front placements; central worse than 4-front both in bulk
  // error and in the >10 m tail.
  const bool pass = medians[0] <= medians[2] + 0.2 &&
                    medians[2] <= medians[3] + 0.2 &&
                    medians[1] > medians[0] && means[1] > means[0] &&
                    p_under_10[1] <= p_under_10[0];
  std::printf("  shape check: 4f best, fewer radios worse, central worse than front: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
