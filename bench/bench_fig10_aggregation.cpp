// Fig 10: CDFs of relative distance error with one SYN point vs multiple
// SYN points under different aggregation schemes — 8-lane urban road, same
// lane, 4 front radios per car, passing vehicles enabled (the paper traces
// most large single-SYN errors to big vehicles passing by; Sec. VI-C).
//
// Expected shape: single SYN has a heavy error tail; simple average of 5
// SYN points trims it; selective average (drop min/max) is best.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_campaign.hpp"
#include "util/stats.hpp"

using namespace rups;

int main() {
  bench::header("Fig 10", "RDE with one vs multiple SYN points");

  struct Variant {
    const char* label;
    std::size_t syn_points;
    core::Aggregation aggregation;
  };
  const Variant variants[] = {
      {"one SYN point", 1, core::Aggregation::kSingleBest},
      {"5 SYN, simple average", 5, core::Aggregation::kMean},
      {"5 SYN, selective average", 5, core::Aggregation::kSelectiveMean},
  };

  const std::size_t queries = bench::scaled(250);
  auto csv = bench::csv_out("fig10_aggregation");
  csv.row(std::vector<std::string>{"variant", "rde_m"});

  std::vector<double> means, p_over_10;
  for (const auto& v : variants) {
    auto scenario =
        bench::paper_scenario(77, road::EnvironmentType::kEightLaneUrban);
    scenario.passing_rate_scale = 1.5;  // busy major road
    scenario.rups.syn.syn_points = v.syn_points;
    scenario.rups.aggregation = v.aggregation;
    const auto result = bench::run(scenario, queries);
    const auto errors = result.rups_errors();
    for (double e : errors) {
      csv.row(std::vector<std::string>{v.label, std::to_string(e)});
    }
    util::EmpiricalCdf cdf{std::vector<double>(errors)};
    const double over10 = errors.empty() ? 1.0 : 1.0 - cdf.at(10.0);
    means.push_back(util::mean(errors));
    p_over_10.push_back(over10);
    std::printf("  %-26s n=%4zu  mean %6.2f m  p90 %6.2f m  P(err>10m) %.2f\n",
                v.label, errors.size(), util::mean(errors),
                errors.empty() ? 0.0 : cdf.quantile(0.9), over10);
  }

  bench::paper_vs_measured("P(RDE > 10 m), one SYN point", 0.25, p_over_10[0],
                           "");
  const bool pass =
      means[2] <= means[1] + 0.3 && means[1] < means[0] &&
      p_over_10[2] < p_over_10[0];
  std::printf("  shape check: selective avg <= simple avg < single SYN: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
