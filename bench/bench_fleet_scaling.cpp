// Fleet-scale batched estimation sweep: one ego context against N
// neighbour contexts per beacon round, N in {2,4,8,16,32}, serial vs
// ThreadPool-sharded, cold (full SYN search every round) vs warm
// (SynCache tracking). Every mode replays the exact same synthetic
// trajectory sequence, so the estimates must be IDENTICAL across modes —
// the sweep proves the caching/batching layer changes cost, never results.
//
// Quick mode (default, used by the bench regression gate) runs a fixed
// number of rounds regardless of RUPS_BENCH_SCALE so its counters are
// deterministic; set RUPS_FLEET_FULL=1 to add a real 16-vehicle convoy
// campaign compared against the classic pairwise query path.

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "core/syn_seeker.hpp"
#include "sim/fleet_sim.hpp"
#include "util/hash_noise.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rups;

constexpr std::size_t kChannels = 115;
constexpr std::size_t kInitialM = 600;
constexpr std::size_t kRounds = 12;
constexpr std::size_t kStepM = 2;
constexpr std::size_t kCapacityM = 1000;
constexpr std::size_t kMaxFleet = 32;

/// Per-vehicle pre-generated RSSI matrix [metre][channel], shared by every
/// sweep mode so each mode sees bit-identical inputs.
using RssiLog = std::vector<std::vector<float>>;

RssiLog make_vehicle_log(std::size_t vehicle, std::size_t metres) {
  const util::HashNoise chan_noise(0xC0FFEE);
  // Neighbour j leads the ego by a distinct, stable gap.
  const std::int64_t road_offset =
      vehicle == 0 ? 0 : static_cast<std::int64_t>(20 + 15 * (vehicle - 1));
  util::Rng rng(1000 + vehicle);
  RssiLog log(metres, std::vector<float>(kChannels));
  for (std::size_t i = 0; i < metres; ++i) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      const util::LatticeField1D field(util::hash_combine(17, c), 8.0, 2);
      log[i][c] = static_cast<float>(
          -95.0 + 40.0 * chan_noise.uniform(static_cast<std::int64_t>(c)) +
          6.0 * field.value(static_cast<double>(
                    static_cast<std::int64_t>(i) + road_offset)) +
          rng.gaussian(0.0, 0.5));
    }
  }
  return log;
}

void append_metres(core::ContextTrajectory& t, const RssiLog& log,
                   std::size_t from, std::size_t count) {
  for (std::size_t i = from; i < from + count; ++i) {
    core::PowerVector pv(kChannels);
    for (std::size_t c = 0; c < kChannels; ++c) pv.set(c, log[i][c]);
    t.append(core::GeoSample{}, std::move(pv));
  }
}

struct ModeResult {
  double seconds = 0.0;
  core::SynCache::Stats cache;
  /// results[round][neighbour]
  std::vector<std::vector<core::FleetEngine::NeighbourResult>> results;
};

ModeResult run_mode(const std::vector<RssiLog>& logs, std::size_t fleet_n,
                    bool warm, util::ThreadPool* pool) {
  core::FleetConfig cfg;
  cfg.rups.context_capacity_m = kCapacityM;
  cfg.use_cache = warm;
  core::FleetEngine engine(cfg);

  std::vector<core::ContextTrajectory> contexts;
  contexts.reserve(fleet_n + 1);
  for (std::size_t v = 0; v < fleet_n + 1; ++v) {
    contexts.emplace_back(kChannels, kCapacityM);
    append_metres(contexts.back(), logs[v], 0, kInitialM);
  }
  std::vector<const core::ContextTrajectory*> neighbours;
  std::vector<std::uint64_t> ids;
  for (std::size_t v = 1; v < fleet_n + 1; ++v) {
    neighbours.push_back(&contexts[v]);
    ids.push_back(static_cast<std::uint64_t>(v));
  }

  ModeResult out;
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < kRounds; ++round) {
    if (round != 0) {
      const std::size_t from = kInitialM + (round - 1) * kStepM;
      for (std::size_t v = 0; v < fleet_n + 1; ++v) {
        append_metres(contexts[v], logs[v], from, kStepM);
      }
    }
    out.results.push_back(
        engine.estimate_batch(contexts[0], neighbours, ids, pool));
  }
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              started)
                    .count();
  out.cache = engine.cache_stats();
  return out;
}

bool same_results(
    const std::vector<std::vector<core::FleetEngine::NeighbourResult>>& a,
    const std::vector<std::vector<core::FleetEngine::NeighbourResult>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) return false;
    for (std::size_t i = 0; i < a[r].size(); ++i) {
      const auto& x = a[r][i];
      const auto& y = b[r][i];
      if (x.estimate.has_value() != y.estimate.has_value()) return false;
      if (x.estimate.has_value() &&
          (x.estimate->distance_m != y.estimate->distance_m ||
           x.estimate->confidence != y.estimate->confidence ||
           x.estimate->syn_count != y.estimate->syn_count)) {
        return false;
      }
      if (x.syn_points.size() != y.syn_points.size()) return false;
      for (std::size_t s = 0; s < x.syn_points.size(); ++s) {
        if (x.syn_points[s].index_a != y.syn_points[s].index_a ||
            x.syn_points[s].index_b != y.syn_points[s].index_b ||
            x.syn_points[s].window_m != y.syn_points[s].window_m ||
            x.syn_points[s].correlation != y.syn_points[s].correlation) {
          return false;
        }
      }
    }
  }
  return true;
}

double hit_rate(const core::SynCache::Stats& s) {
  const std::size_t resolved =
      s.tracking_hits + s.tracking_misses + s.full_searches;
  return resolved == 0
             ? 0.0
             : static_cast<double>(s.tracking_hits) /
                   static_cast<double>(resolved);
}

/// Full mode: a real 16-vehicle convoy campaign through FleetEngine,
/// cross-checked against the classic per-pair query path on the same sim.
bool run_full_campaign() {
  using bench::paper_vs_measured;
  std::printf("----------------------------------------------------------------\n");
  std::printf("full mode: 16-vehicle convoy campaign (RUPS_FLEET_FULL=1)\n");
  std::printf("----------------------------------------------------------------\n");
  sim::Scenario scenario =
      sim::Scenario::fleet(7, road::EnvironmentType::kFourLaneUrban,
                           /*vehicle_count=*/16, /*gap_m=*/25.0);
  scenario.route_length_m = 9'000.0;
  sim::FleetCampaignConfig cfg;
  cfg.base.warmup_s = 350.0;
  cfg.base.interval_s = 5.0;
  cfg.base.max_queries = bench::scaled(20);  // rounds
  sim::FleetSimulation fleet(scenario, cfg);
  const auto result = sim::run_fleet_campaign(fleet, cfg);

  // Pairwise reference on the same (already driven) sim: the rear car
  // queries its immediate leader through the classic engine path.
  std::vector<double> pair_errors;
  for (std::size_t i = 0; i + 1 < fleet.sim().vehicle_count(); ++i) {
    const auto q = fleet.sim().query(fleet.ego_index(), i);
    if (const auto e = q.rups_error()) pair_errors.push_back(*e);
  }
  double pair_mean = 0.0;
  for (const double e : pair_errors) pair_mean += e;
  if (!pair_errors.empty()) {
    pair_mean /= static_cast<double>(pair_errors.size());
  }
  const auto fleet_errors = result.rups_errors();
  double fleet_mean = 0.0;
  for (const double e : fleet_errors) fleet_mean += e;
  if (!fleet_errors.empty()) {
    fleet_mean /= static_cast<double>(fleet_errors.size());
  }

  std::printf("  rounds %zu  availability %.2f  cache hit rate %.2f\n",
              result.rounds.size(), result.availability(),
              hit_rate(result.cache));
  std::printf("  v2v bytes %zu  mean query latency %.0f us\n", result.v2v_bytes,
              result.mean_latency_us());
  paper_vs_measured("fleet mean |error| vs pairwise (m)", pair_mean,
                    fleet_mean, "m");
  // "Within noise": the fleet path must not degrade accuracy; allow the
  // pairwise snapshot (one query per pair) generous slack vs the campaign
  // average.
  const bool ok = fleet_errors.empty() || pair_errors.empty() ||
                  fleet_mean <= pair_mean + 5.0;
  std::printf("  accuracy check: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main() {
  bench::header("fleet", "batched estimation scaling (ego vs N neighbours)");

  std::printf("  synthetic sweep: %zu rounds, +%zu m/round, %zu m initial "
              "context\n",
              kRounds, kStepM, kInitialM);

  std::vector<RssiLog> logs;
  const std::size_t total_m = kInitialM + kRounds * kStepM;
  for (std::size_t v = 0; v < kMaxFleet + 1; ++v) {
    logs.push_back(make_vehicle_log(v, total_m));
  }

  util::ThreadPool pool(0);
  auto csv = bench::csv_out("fleet_scaling");
  csv.row({"fleet_n", "pooled", "warm_cache", "seconds", "queries_per_s",
           "cache_hit_rate"});

  bool determinism_ok = true;
  double serial_cold_16 = 0.0;
  double pooled_warm_16 = 0.0;
  double hit_rate_16 = 0.0;
  std::printf("  %-8s %-8s %-6s %10s %12s %9s\n", "fleet_n", "mode", "cache",
              "seconds", "queries/s", "hit-rate");
  for (const std::size_t n : {2UL, 4UL, 8UL, 16UL, 32UL}) {
    std::optional<ModeResult> reference;
    for (const bool pooled : {false, true}) {
      for (const bool warm : {false, true}) {
        const ModeResult r =
            run_mode(logs, n, warm, pooled ? &pool : nullptr);
        const double qps =
            static_cast<double>(n * kRounds) / std::max(r.seconds, 1e-9);
        std::printf("  %-8zu %-8s %-6s %10.3f %12.1f %9.2f\n", n,
                    pooled ? "pooled" : "serial", warm ? "warm" : "cold",
                    r.seconds, qps, hit_rate(r.cache));
        csv.row({static_cast<double>(n), pooled ? 1.0 : 0.0, warm ? 1.0 : 0.0,
                 r.seconds, qps, hit_rate(r.cache)});
        if (!reference.has_value()) {
          reference = r;  // serial + cold = the classic per-pair path
        } else if (!same_results(reference->results, r.results)) {
          determinism_ok = false;
          std::printf("  ^ MISMATCH vs serial-cold results\n");
        }
        if (n == 16 && !pooled && !warm) serial_cold_16 = r.seconds;
        if (n == 16 && pooled && warm) {
          pooled_warm_16 = r.seconds;
          hit_rate_16 = hit_rate(r.cache);
        }
      }
    }
  }

  const double speedup =
      pooled_warm_16 > 0.0 ? serial_cold_16 / pooled_warm_16 : 0.0;
  std::printf("\n");
  bench::paper_vs_measured("N=16 pooled+warm speedup vs serial cold (x)", 3.0,
                           speedup, "x");
  bench::paper_vs_measured("N=16 steady-state cache hit rate", 0.80,
                           hit_rate_16, "");
  std::printf("  determinism (all modes == serial cold): %s\n",
              determinism_ok ? "PASS" : "FAIL");

  bool ok = determinism_ok && speedup >= 3.0 && hit_rate_16 >= 0.80;
  if (std::getenv("RUPS_FLEET_FULL") != nullptr) {
    ok = run_full_campaign() && ok;
  }

  bench::print_stage_breakdown();
  const auto json = bench::write_metrics_json("fleet_scaling");
  std::printf("  metrics json: %s\n", json.string().c_str());
  std::printf("fleet scaling: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
