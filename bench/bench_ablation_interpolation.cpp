// Ablation: missing-channel interpolation (paper Sec. IV-C / Fig 6). With
// interpolation disabled, a moving scanner's sparse per-metre coverage
// leaves too few jointly-usable positions per channel and the SYN search
// starves; linear interpolation over distance restores comparability. The
// max bridging gap trades coverage against fabricated structure.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_campaign.hpp"
#include "util/stats.hpp"

using namespace rups;

int main() {
  bench::header("Ablation", "missing-channel interpolation and max gap");

  const std::size_t queries = bench::scaled(120);
  auto csv = bench::csv_out("ablation_interpolation");
  csv.row(std::vector<std::string>{"variant", "mean_rde_m", "availability",
                                   "usable_fraction"});

  struct Variant {
    const char* label;
    bool interpolate;
    std::size_t max_gap_m;
  };
  const Variant variants[] = {
      {"no interpolation", false, 0},
      {"interpolate, gap <= 10 m", true, 10},
      {"interpolate, gap <= 40 m", true, 40},
      {"interpolate, gap <= 120 m", true, 120},
  };

  std::printf("  %-26s %-12s %-14s %s\n", "variant", "mean RDE(m)",
              "availability", "usable slots");
  std::vector<double> avail;
  std::vector<double> rde;
  for (const auto& v : variants) {
    auto scenario =
        bench::paper_scenario(62, road::EnvironmentType::kFourLaneUrban);
    // Single radio per car: the harshest missing-channel regime.
    bench::set_radios(scenario, 1, 1);
    scenario.rups.binder.interpolate = v.interpolate;
    if (v.max_gap_m) scenario.rups.binder.max_interpolation_gap_m = v.max_gap_m;
    sim::ConvoySimulation sim(scenario);
    sim::CampaignConfig cfg;
    cfg.max_queries = queries;
    const auto result = sim::run_campaign(sim, cfg);

    // Usable (measured or interpolated) slot fraction in the rear context.
    const auto& ctx = sim.rig(1).engine().context();
    double usable = 0.0;
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      usable += static_cast<double>(ctx.power(i).usable_count());
    }
    usable /= static_cast<double>(ctx.size()) *
              static_cast<double>(ctx.channels());

    util::RunningStats r;
    for (double e : result.rups_errors()) r.add(e);
    std::printf("  %-26s %-12.2f %-14.2f %.2f\n", v.label, r.mean(),
                result.rups_availability(), usable);
    csv.row(std::vector<std::string>{
        v.label, std::to_string(r.mean()),
        std::to_string(result.rups_availability()), std::to_string(usable)});
    avail.push_back(result.rups_availability());
    rde.push_back(r.mean());
  }

  // Expected shape: interpolation dramatically lifts availability; a
  // moderate gap (the paper-style regime, 40 m) is at least as accurate as
  // unlimited bridging.
  const bool pass = avail[0] < avail[2] - 0.1 && avail[2] > 0.5 &&
                    rde[2] <= rde[3] + 1.0;
  std::printf("  shape check: interpolation lifts availability; moderate gap suffices: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
