// Streaming efficiency vs the round protocol (DESIGN §17): the SAME seeded
// CityFleet drive runs twice per fault profile — once as a per-metre
// beacon-diff stream (stream::StreamingEngine) and once as the PR 5
// full+tail round baseline — so bytes-per-estimate, accuracy and staleness
// compare like for like. Both modes pay their initial sync; errors and
// staleness are accounted post-warmup at an identical per-metre cadence.
//
// Three enforced properties (nonzero exit on violation):
//   1. efficiency — beacon diffs cut wire bytes per delivered estimate by
//      >= 5x on every profile (clean, urban ~5% burst loss, congested).
//   2. equal accuracy — the streaming mean |error| stays within 10% (with
//      a 0.25 m codec-quantization floor) of the batch baseline's.
//   3. freshness — streaming staleness p99 stays under half the round
//      interval even on the urban profile (the batch baseline is pinned
//      near a full interval by construction), and never exceeds batch.
//
// The campaign is fixed-size and seeded (RUPS_BENCH_SCALE is ignored) so
// the stream.* counters and the per-profile gauges in
// bench_out/stream_metrics.json are deterministic and can be diffed by
// scripts/bench_regression.sh (stream_metrics section).

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "sim/stream_sim.hpp"
#include "v2v/channel.hpp"

using namespace rups;

namespace {

struct ProfileRow {
  std::string name;
  sim::StreamCampaignResult streamed;
  sim::StreamCampaignResult batch;
};

sim::StreamCampaignConfig campaign_config(const v2v::FaultConfig& fault) {
  sim::StreamCampaignConfig cfg;
  cfg.city.vehicles = 5;
  cfg.city.channels = 24;
  cfg.city.context_capacity_m = 200;
  cfg.city.spacing_m = 15.0;
  // Constant convoy speed: staleness must measure the PROTOCOL, so every
  // pair has to stay resolvable for the whole drive. With a spread advance
  // band a neighbour slower than the (rearmost) ego falls behind it and
  // the seek geometry legitimately starves — in both modes alike, which
  // would swamp the protocol-staleness comparison. Drift stress lives in
  // bench_fleet_scaling / bench_fault_sweep.
  cfg.city.min_advance_m = 11;
  cfg.city.max_advance_m = 11;
  cfg.city.seed = 0x57E4'11FEULL;
  cfg.rounds = 34;
  // A pair at distance d resolves once both contexts reach the checking
  // window PLUS d (~85 + 60 m for the farthest neighbour => round ~13);
  // accounting starts after every pair is warm so staleness measures the
  // exchange protocol, not the estimator's cold-start geometry.
  cfg.warmup_rounds = 14;
  cfg.neighbours = 4;
  cfg.fault = fault;
  return cfg;
}

}  // namespace

int main() {
  bench::header("Sec §17", "streaming beacon-diff vs round full+tail");

  const std::vector<std::pair<std::string, v2v::FaultConfig>> profiles = {
      {"clean", v2v::FaultConfig::clean()},
      {"urban", v2v::FaultConfig::urban()},
      {"congested", v2v::FaultConfig::congested()},
  };

  std::vector<ProfileRow> rows;
  for (const auto& [name, fault] : profiles) {
    const sim::StreamCampaignConfig cfg = campaign_config(fault);
    ProfileRow row;
    row.name = name;
    row.streamed = sim::run_stream_campaign(cfg);
    row.batch = sim::run_batch_campaign(cfg);
    rows.push_back(std::move(row));
  }

  auto csv = bench::csv_out("stream_efficiency");
  csv.row(std::vector<std::string>{
      "profile", "mode", "estimates", "bytes", "bytes_per_estimate",
      "mean_err_m", "staleness_p50_s", "staleness_p99_s", "resyncs",
      "rerequests"});

  auto& reg = obs::Registry::global();
  std::printf("  %-10s %-7s %9s %10s %8s %9s %8s %8s\n", "profile", "mode",
              "estimates", "bytes", "B/est", "err(m)", "p50(s)", "p99(s)");
  for (const auto& row : rows) {
    const auto print_mode = [&](const char* mode,
                                const sim::StreamCampaignResult& r) {
      std::printf("  %-10s %-7s %9llu %10zu %8.1f %9.3f %8.3f %8.3f\n",
                  row.name.c_str(), mode,
                  static_cast<unsigned long long>(r.estimates), r.bytes,
                  r.bytes_per_estimate, r.mean_error(),
                  r.staleness_quantile(0.50), r.staleness_quantile(0.99));
      csv.row(std::vector<std::string>{
          row.name, mode, std::to_string(r.estimates),
          std::to_string(r.bytes), std::to_string(r.bytes_per_estimate),
          std::to_string(r.mean_error()),
          std::to_string(r.staleness_quantile(0.50)),
          std::to_string(r.staleness_quantile(0.99)),
          std::to_string(r.beacons.resyncs),
          std::to_string(r.beacons.rerequests)});
      const std::string suffix = "." + std::string(mode) + "." + row.name;
      reg.gauge("streambench.bytes_per_estimate" + suffix)
          .set(r.bytes_per_estimate);
      reg.gauge("streambench.mean_err_m" + suffix).set(r.mean_error());
      reg.gauge("streambench.staleness_p99_s" + suffix)
          .set(r.staleness_quantile(0.99));
    };
    print_mode("stream", row.streamed);
    print_mode("batch", row.batch);
    reg.gauge("streambench.reduction." + row.name)
        .set(row.streamed.bytes_per_estimate > 0.0
                 ? row.batch.bytes_per_estimate /
                       row.streamed.bytes_per_estimate
                 : 0.0);
  }

  bool pass = true;
  const double interval_s = campaign_config(profiles[0].second).city.interval_s;
  for (const auto& row : rows) {
    const sim::StreamCampaignResult& s = row.streamed;
    const sim::StreamCampaignResult& b = row.batch;
    if (s.estimates == 0 || b.estimates == 0) {
      std::printf("  FAIL[%s]: a mode produced no estimates\n",
                  row.name.c_str());
      pass = false;
      continue;
    }

    // 1. Bytes-per-estimate: the beacon diffs must amortize the per-packet
    //    overhead at least 5x better than one tail exchange per round.
    const double reduction = b.bytes_per_estimate / s.bytes_per_estimate;
    std::printf("  %-10s bytes/estimate reduction %5.2fx (need >= 5.0x)\n",
                row.name.c_str(), reduction);
    if (!(reduction >= 5.0)) {
      std::printf("  FAIL[%s]: streaming lost its wire-efficiency edge\n",
                  row.name.c_str());
      pass = false;
    }

    // 2. Equal accuracy: same codec, same channel, same estimator — the
    //    per-metre cadence must not degrade the estimates it delivers.
    const double err_budget =
        std::max(b.mean_error() * 1.10, b.mean_error() + 0.25);
    if (!(s.mean_error() <= err_budget)) {
      std::printf("  FAIL[%s]: stream mean err %.3f m vs budget %.3f m\n",
                  row.name.c_str(), s.mean_error(), err_budget);
      pass = false;
    }

    // 3. Freshness: estimates refresh every metre, so staleness p99 must
    //    stay well under the round interval even when beacons degrade, and
    //    streaming must never be MORE stale than the round baseline.
    const double staleness_budget = 0.5 * interval_s;
    const double p99 = s.staleness_quantile(0.99);
    if (!(p99 <= staleness_budget)) {
      std::printf("  FAIL[%s]: stream staleness p99 %.3f s over budget %.3f s\n",
                  row.name.c_str(), p99, staleness_budget);
      pass = false;
    }
    if (!(p99 <= b.staleness_quantile(0.99))) {
      std::printf("  FAIL[%s]: streaming staler than the round baseline\n",
                  row.name.c_str());
      pass = false;
    }
  }

  bench::note("both modes pay their initial sync; errors/staleness are "
              "post-warmup at the same per-metre cadence");
  bench::write_metrics_json("stream");
  bench::print_stage_breakdown();
  std::printf("  stream efficiency gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
