// Ablation: convoy gap. The paper's ground-truth rangefinder capped the
// evaluated gaps at 50 m; this sweep asks how RUPS behaves beyond that —
// relevant for the intro's "vehicle approaching rapidly from behind" use
// case. Two effects compete as the gap grows: (a) the time between the two
// cars' passes over the same road grows, so the ephemeral part of the fine
// multipath decorrelates, and (b) the shared context shrinks relative to
// the 1000 m retention window.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_campaign.hpp"
#include "util/stats.hpp"

using namespace rups;

int main() {
  bench::header("Ablation", "RUPS accuracy vs convoy gap");

  const std::size_t queries = bench::scaled(100);
  auto csv = bench::csv_out("ablation_gap");
  csv.row(std::vector<std::string>{"gap_m", "mean_rde_m", "median_rde_m",
                                   "availability"});

  std::printf("  %-9s %-12s %-13s %s\n", "gap(m)", "mean RDE(m)",
              "median RDE(m)", "availability");
  std::vector<double> medians;
  std::vector<double> avail;
  for (double gap : {15.0, 40.0, 100.0, 250.0, 500.0}) {
    sim::Scenario scenario = sim::Scenario::two_car(
        91, road::EnvironmentType::kFourLaneUrban, gap);
    scenario.route_length_m = 16'000.0;
    scenario.rups.syn.syn_points = 5;
    scenario.rups.aggregation = core::Aggregation::kSelectiveMean;
    // Disable car-following coupling distortions at huge gaps by widening
    // the follow band: the rear car just drives its own style.
    sim::ConvoySimulation sim(scenario);
    sim::CampaignConfig cfg;
    cfg.max_queries = queries;
    cfg.warmup_s = 400.0;
    const auto result = sim::run_campaign(sim, cfg);
    const auto errors = result.rups_errors();
    util::RunningStats r;
    for (double e : errors) r.add(e);
    const double med = util::median(errors);
    std::printf("  %-9.0f %-12.2f %-13.2f %.2f\n", gap, r.mean(), med,
                result.rups_availability());
    csv.row(std::vector<std::string>{
        std::to_string(gap), std::to_string(r.mean()), std::to_string(med),
        std::to_string(result.rups_availability())});
    medians.push_back(med);
    avail.push_back(result.rups_availability());
  }

  // Expected shape: metre-level accuracy at rangefinder-scale gaps, graceful
  // degradation (not collapse) out to several hundred metres while the
  // contexts still overlap.
  const bool pass = medians[0] < 3.0 && medians[1] < 3.0 &&
                    avail[0] > 0.9 && avail[3] > 0.5 &&
                    medians[3] < 25.0;
  std::printf("  shape check: metre-level near, graceful degradation far: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
