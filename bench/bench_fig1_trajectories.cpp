// Fig 1: R-GSM-900 power measurements on two different roads, with the
// first road entered twice — the qualitative demonstration that GSM-aware
// trajectories repeat on the same road and differ across roads.
//
// Prints summary statistics and dumps the three 150 m x full-band
// spectrograms to bench_out/fig1_*.csv.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/correlation.hpp"
#include "gsm/gsm_field.hpp"
#include "road/road_network.hpp"
#include "sim/survey.hpp"

using namespace rups;

namespace {

void dump(const char* name, const core::ContextTrajectory& traj) {
  auto csv = bench::csv_out(name);
  std::vector<std::string> head{"metre"};
  for (std::size_t c = 0; c < traj.channels(); ++c) {
    head.push_back("ch" + std::to_string(c));
  }
  csv.row(head);
  for (std::size_t i = 0; i < traj.size(); ++i) {
    std::vector<double> row{static_cast<double>(i)};
    for (std::size_t c = 0; c < traj.channels(); ++c) {
      row.push_back(traj.power(i).at(c));
    }
    csv.row(row);
  }
}

}  // namespace

int main() {
  bench::header("Fig 1", "GSM-aware trajectories: two roads, road 1 twice");

  const auto plan = gsm::ChannelPlan::full_r_gsm_900();
  gsm::GsmField field(2016, plan);
  sim::GsmSurvey survey(&field);
  const auto net = road::RoadNetwork::generate(
      7, 2, 150.0,
      {road::EnvironmentType::kFourLaneUrban,
       road::EnvironmentType::kEightLaneUrban});

  // Road 1 entered twice (30 min apart), road 2 once — the paper's setup.
  const auto road1_entry1 =
      survey.collect_trajectory(net.segment(0), 0.0, 150.0, 1, 0.0);
  const auto road1_entry2 =
      survey.collect_trajectory(net.segment(0), 0.0, 150.0, 1, 1800.0);
  const auto road2 =
      survey.collect_trajectory(net.segment(1), 0.0, 150.0, 1, 0.0);

  dump("fig1_road1_entry1", road1_entry1);
  dump("fig1_road1_entry2", road1_entry2);
  dump("fig1_road2", road2);

  std::vector<std::size_t> channels(plan.size());
  std::iota(channels.begin(), channels.end(), 0);
  const double same_road = core::trajectory_correlation(
      {&road1_entry1, 0}, {&road1_entry2, 0}, 150, channels);
  const double diff_road = core::trajectory_correlation(
      {&road1_entry1, 0}, {&road2, 0}, 150, channels);

  std::printf("  trajectory correlation, road 1 vs road 1 (30 min later): %.3f\n",
              same_road);
  std::printf("  trajectory correlation, road 1 vs road 2:                %.3f\n",
              diff_road);
  bench::note("paper shows the same qualitative contrast (visual figure):");
  bench::note("same road at different times ~similar, different roads distinct");
  std::printf("  shape check: same-road corr >> different-road corr: %s\n",
              same_road > diff_road + 0.5 ? "PASS" : "FAIL");
  std::printf("  spectrograms written to bench_out/fig1_*.csv\n");
  return same_road > diff_road + 0.5 ? 0 : 1;
}
