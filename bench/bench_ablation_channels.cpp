// Ablation: checking-window WIDTH — the number of strongest channels k
// used by the SYN search. The paper fixes k = 45 (Sec. VI-B); this sweep
// shows why: too few channels lose discrimination, while the cost grows
// linearly in k (O(m*w*k)) with diminishing accuracy returns.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_campaign.hpp"
#include "util/stats.hpp"

using namespace rups;

int main() {
  bench::header("Ablation", "top-k channel count of the checking window");

  const std::size_t queries = bench::scaled(120);
  auto csv = bench::csv_out("ablation_channels");
  csv.row(std::vector<std::string>{"top_channels", "mean_rde_m",
                                   "availability", "query_ms"});

  std::printf("  %-10s %-12s %-14s %s\n", "k", "mean RDE(m)", "availability",
              "query time(ms)");

  std::vector<double> rde_by_k;
  std::vector<double> ms_by_k;
  for (std::size_t k : {5UL, 10UL, 25UL, 45UL, 80UL, 115UL}) {
    auto scenario =
        bench::paper_scenario(61, road::EnvironmentType::kFourLaneUrban);
    scenario.rups.syn.top_channels = k;
    sim::ConvoySimulation sim(scenario);
    sim::CampaignConfig cfg;
    cfg.max_queries = queries;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = sim::run_campaign(sim, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    // Rough per-query cost: campaign time minus simulation time is hard to
    // separate; measure one explicit query instead.
    const auto q0 = std::chrono::steady_clock::now();
    (void)sim.query(1, 0);
    const auto q1 = std::chrono::steady_clock::now();
    const double query_ms =
        std::chrono::duration<double, std::milli>(q1 - q0).count();
    (void)t0;
    (void)t1;

    util::RunningStats rde;
    for (double e : result.rups_errors()) rde.add(e);
    std::printf("  %-10zu %-12.2f %-14.2f %.2f\n", k, rde.mean(),
                result.rups_availability(), query_ms);
    csv.row(std::vector<std::string>{
        std::to_string(k), std::to_string(rde.mean()),
        std::to_string(result.rups_availability()), std::to_string(query_ms)});
    rde_by_k.push_back(rde.mean());
    ms_by_k.push_back(query_ms);
  }

  // Expected shape: accuracy saturates around the paper's k=45 while cost
  // keeps rising toward the full band.
  const double rde_45 = rde_by_k[3];
  const double rde_115 = rde_by_k[5];
  const bool pass = rde_45 <= rde_by_k[0] + 1.0 &&
                    std::abs(rde_115 - rde_45) < 2.0 &&
                    ms_by_k[5] > ms_by_k[3] * 1.5;
  std::printf("  shape check: accuracy saturates by k=45, cost keeps rising: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
