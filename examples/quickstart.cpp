// Quickstart: two instrumented vehicles drive a 4-lane urban road; the rear
// car receives the front car's context-aware trajectory over a simulated
// DSRC link and fixes the front-rear distance with RUPS.
//
//   $ ./quickstart [seed]
//
// Walks through the full public API: scenario setup, simulation, V2V
// exchange, SYN-point search, distance resolution, and comparison against
// both the GPS baseline and ground truth.

#include <cstdio>
#include <cstdlib>

#include "sim/convoy_sim.hpp"
#include "v2v/exchange.hpp"

using namespace rups;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. Describe the experiment: two cars, 40 m initial gap, urban road.
  sim::Scenario scenario =
      sim::Scenario::two_car(seed, road::EnvironmentType::kFourLaneUrban,
                             /*gap_m=*/40.0);
  scenario.route_length_m = 8'000.0;

  // 2. Drive. The warm-up covers sensor calibration (the phones' mounting
  // rotation is unknown at start) and journey-context build-up.
  std::printf("driving 400 s of urban traffic...\n");
  sim::ConvoySimulation sim(scenario);
  sim.run_until(400.0);

  const auto& front = sim.rig(0);
  const auto& rear = sim.rig(1);
  std::printf("front car: odometer %.0f m (truth %.0f m), context %zu m\n",
              front.engine().odometer_m(), front.state().position_m,
              front.engine().context().size());
  std::printf("rear  car: odometer %.0f m (truth %.0f m), context %zu m\n",
              rear.engine().odometer_m(), rear.state().position_m,
              rear.engine().context().size());

  // 3. Exchange the front car's trajectory over DSRC (802.11p WSM frames).
  v2v::DsrcLink link(seed);
  v2v::ExchangeSession session(&link);
  const auto exchange = session.exchange_full(front.engine().context());
  std::printf("V2V exchange: %zu bytes in %zu WSM packets, %.3f s\n",
              exchange.stats.payload_bytes, exchange.stats.packets,
              exchange.stats.duration_s);

  // 4. The rear car searches for SYN points and resolves the distance.
  const auto syns = rear.engine().find_syn_points(exchange.trajectory);
  if (syns.empty()) {
    std::printf("no SYN point found — vehicles do not share a trajectory\n");
    return 1;
  }
  std::printf("found %zu SYN point(s); best correlation %.3f (threshold %.2f)\n",
              syns.size(), syns.front().correlation,
              rear.engine().config().syn.coherency_threshold);

  const auto estimate = core::aggregate_estimates(
      rear.engine().context(), exchange.trajectory, syns,
      core::Aggregation::kSelectiveMean);

  // 5. Compare with ground truth and the GPS baseline.
  const auto q = sim.query(1, 0);
  std::printf("\n  RUPS estimate : %+7.2f m\n", estimate->distance_m);
  std::printf("  ground truth  : %+7.2f m  (negative = rear car is behind)\n",
              q.truth);
  std::printf("  RUPS error    : %7.2f m\n",
              std::abs(estimate->distance_m - q.truth));
  if (q.gps.has_value()) {
    std::printf("  GPS estimate  : %+7.2f m  (error %.2f m)\n", *q.gps,
                *q.gps_error());
  }
  return 0;
}
