// Trace tool: the paper's trace-driven methodology as a workflow. Records
// an instrumented drive to CSV, then replays the recorded sensor streams
// through a FRESH RUPS engine — demonstrating that evaluation can run
// offline, repeatedly, on captured data (exactly how the paper evaluates
// its three months of Shanghai traces).
//
//   $ ./trace_tool record <trace.csv> [seed]    # drive & record
//   $ ./trace_tool replay <trace.csv>           # rebuild context offline
//   $ ./trace_tool demo                         # record + replay + verify

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "sim/convoy_sim.hpp"
#include "sim/trace.hpp"

using namespace rups;

namespace {

sim::Scenario make_scenario(std::uint64_t seed) {
  sim::Scenario s =
      sim::Scenario::two_car(seed, road::EnvironmentType::kFourLaneUrban);
  s.route_length_m = 6'000.0;
  return s;
}

sim::VehicleTrace record(std::uint64_t seed, double duration_s) {
  sim::ConvoySimulation sim(make_scenario(seed));
  sim::TraceRecorder recorder;
  sim.mutable_rig(1).set_trace_sink(&recorder);
  sim.run_until(duration_s);
  // Ground truth per emitted metre, for offline error analysis.
  auto& trace = recorder.trace();
  const auto& rig = sim.rig(1);
  const std::uint64_t metres =
      rig.engine().context().first_metre() + rig.engine().context().size();
  for (std::uint64_t m = 0; m < metres; ++m) {
    trace.true_pos_of_metre.push_back(rig.true_position_of_metre(m));
  }
  return trace;
}

core::RupsEngine replay(const sim::VehicleTrace& trace) {
  core::RupsConfig cfg;  // paper defaults, 115 channels
  core::RupsEngine engine(cfg);
  sim::replay_trace(trace, engine);
  return engine;
}

void summarize(const char* label, const sim::VehicleTrace& trace) {
  std::printf("%s: %zu IMU, %zu OBD, %zu RSSI, %zu GPS samples, %zu truth metres\n",
              label, trace.imu.size(), trace.obd.size(), trace.rssi.size(),
              trace.gps.size(), trace.true_pos_of_metre.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "demo";

  if (mode == "record") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: trace_tool record <trace.csv> [seed]\n");
      return 2;
    }
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;
    std::printf("recording a 300 s drive (seed %llu)...\n",
                static_cast<unsigned long long>(seed));
    const auto trace = record(seed, 300.0);
    trace.save_csv(argv[2]);
    summarize("recorded", trace);
    std::printf("saved to %s\n", argv[2]);
    return 0;
  }

  if (mode == "replay") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: trace_tool replay <trace.csv>\n");
      return 2;
    }
    const auto trace = sim::VehicleTrace::load_csv(argv[2]);
    summarize("loaded", trace);
    const auto engine = replay(trace);
    std::printf("replayed: odometer %.1f m, context %zu m, coverage %.1f%%\n",
                engine.odometer_m(), engine.context().size(),
                100.0 * engine.context().measured_fraction());
    return 0;
  }

  // demo: record, round-trip through CSV, replay, verify equivalence.
  const auto path = std::filesystem::temp_directory_path() / "rups_demo.csv";
  std::printf("1) recording a 300 s drive...\n");
  const auto trace = record(3, 300.0);
  summarize("   recorded", trace);

  std::printf("2) CSV round trip via %s...\n", path.c_str());
  trace.save_csv(path);
  const auto loaded = sim::VehicleTrace::load_csv(path);
  summarize("   reloaded", loaded);

  std::printf("3) replaying through a fresh engine...\n");
  const auto engine = replay(loaded);
  std::printf("   odometer %.1f m, context %zu m\n", engine.odometer_m(),
              engine.context().size());

  const bool ok = loaded.rssi.size() == trace.rssi.size() &&
                  engine.context().size() > 100;
  std::printf("\ntrace-driven workflow %s: the captured streams rebuild the\n"
              "same journey context offline — evaluation never needs the\n"
              "original drive again.\n",
              ok ? "VERIFIED" : "FAILED");
  std::filesystem::remove(path);
  return ok ? 0 : 1;
}
