// Trace tool: the paper's trace-driven methodology as a workflow. Records
// an instrumented drive to CSV, then replays the recorded sensor streams
// through a FRESH RUPS engine — demonstrating that evaluation can run
// offline, repeatedly, on captured data (exactly how the paper evaluates
// its three months of Shanghai traces).
//
//   $ ./trace_tool record <trace.csv> [seed]    # drive & record
//   $ ./trace_tool replay <trace.csv>           # rebuild context offline
//   $ ./trace_tool demo                         # record + replay + verify
//   $ ./trace_tool campaign [queries]           # instrumented query campaign
//
// Observability flags (any mode):
//   --metrics-out <out.json>   dump the rups::obs metrics snapshot on exit
//   --trace-out <trace.json>   record Chrome trace_event spans; open the
//                              file in chrome://tracing or ui.perfetto.dev

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/quant.hpp"
#include "obs/obs.hpp"
#include "sim/campaign.hpp"
#include "sim/convoy_sim.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"

using namespace rups;

namespace {

/// SYN kernel precision for every engine this tool builds (--precision).
core::KernelPrecision g_precision = core::KernelPrecision::kFloat32;

sim::Scenario make_scenario(std::uint64_t seed) {
  sim::Scenario s =
      sim::Scenario::two_car(seed, road::EnvironmentType::kFourLaneUrban);
  s.route_length_m = 6'000.0;
  s.rups.syn.precision = g_precision;
  return s;
}

sim::VehicleTrace record(std::uint64_t seed, double duration_s) {
  sim::ConvoySimulation sim(make_scenario(seed));
  sim::TraceRecorder recorder;
  sim.mutable_rig(1).set_trace_sink(&recorder);
  sim.run_until(duration_s);
  // Ground truth per emitted metre, for offline error analysis.
  auto& trace = recorder.trace();
  const auto& rig = sim.rig(1);
  const std::uint64_t metres =
      rig.engine().context().first_metre() + rig.engine().context().size();
  for (std::uint64_t m = 0; m < metres; ++m) {
    trace.true_pos_of_metre.push_back(rig.true_position_of_metre(m));
  }
  return trace;
}

core::RupsEngine replay(const sim::VehicleTrace& trace) {
  core::RupsConfig cfg;  // paper defaults, 115 channels
  cfg.syn.precision = g_precision;
  core::RupsEngine engine(cfg);
  sim::replay_trace(trace, engine);
  return engine;
}

void summarize(const char* label, const sim::VehicleTrace& trace) {
  std::printf("%s: %zu IMU, %zu OBD, %zu RSSI, %zu GPS samples, %zu truth metres\n",
              label, trace.imu.size(), trace.obd.size(), trace.rssi.size(),
              trace.gps.size(), trace.true_pos_of_metre.size());
}

/// Instrumented query campaign: the observability showcase. Produces
/// non-zero SYN-search, V2V-bytes and query-latency metrics, a windowed
/// telemetry series (--series-out), and (with --trace-out) a span per
/// seek/query for chrome://tracing.
int run_campaign_mode(std::uint64_t seed, std::size_t max_queries,
                      const std::string& series_out) {
  sim::ConvoySimulation sim(make_scenario(seed));
  sim::CampaignConfig cfg;
  cfg.max_queries = max_queries;
  cfg.model_v2v_cost = true;
  const auto result = sim::run_campaign(sim, cfg);
  if (!series_out.empty()) {
    std::ofstream out(series_out);
    out << result.series.to_json();
    if (out) {
      std::printf("series written to %s (%zu windows)\n", series_out.c_str(),
                  result.series.windows());
    } else {
      std::fprintf(stderr, "error: failed to write %s\n", series_out.c_str());
      return 2;
    }
  }

  const auto errors = result.rups_errors();
  std::printf("campaign: %zu queries, availability %.2f, mean |error| %.2f m\n",
              result.queries.size(), result.rups_availability(),
              errors.empty() ? 0.0 : util::mean(errors));
  std::printf("key metrics:\n");
  for (const char* name :
       {"syn.windows_scanned", "syn.seeks", "v2v.payload_bytes",
        "v2v.messages", "gsm.field_evals", "campaign.queries"}) {
    if (const auto* c = result.metrics.counter(name)) {
      std::printf("  %-24s %12llu\n", name,
                  static_cast<unsigned long long>(c->value));
    }
  }
  if (const auto* h = result.metrics.histogram("campaign.query_latency_us")) {
    std::printf("  %-24s n=%llu mean=%.0f us max=%.0f us\n",
                "query_latency_us", static_cast<unsigned long long>(h->count),
                h->mean(), h->max);
  }
  return result.queries.empty() ? 1 : 0;
}

void print_help() {
  std::printf(
      "usage: trace_tool [mode] [args] [flags]\n"
      "\n"
      "modes:\n"
      "  demo                 record + CSV round trip + replay + verify\n"
      "                       (default when no mode is given)\n"
      "  record <trace.csv> [seed]\n"
      "                       drive the simulated convoy and save the rear\n"
      "                       vehicle's raw sensor streams\n"
      "  replay <trace.csv>   rebuild journey context offline from a trace\n"
      "  campaign [queries]   instrumented query campaign (default 25)\n"
      "\n"
      "flags (any mode):\n"
      "  --metrics-out FILE   dump the rups::obs metrics snapshot on exit\n"
      "  --trace-out FILE     record Chrome trace_event spans (open in\n"
      "                       chrome://tracing or ui.perfetto.dev)\n"
      "  --series-out FILE    save the campaign's windowed telemetry series\n"
      "                       JSON (campaign mode only; feed it to\n"
      "                       telemetry_report --series-in)\n"
      "  --profile-out FILE   run the sampling span-stack profiler and save\n"
      "                       folded stacks (speedscope.app / flamegraph.pl)\n"
      "  --serve PORT         serve live /metrics (Prometheus text) and\n"
      "                       /healthz on 127.0.0.1:PORT while running\n"
      "                       (0 picks an ephemeral port)\n"
      "  --precision P        SYN correlation kernel precision: float32\n"
      "                       (default, bit-exact reference), int16 or int8\n"
      "                       (quantized integer kernels, bounded score\n"
      "                       error — see DESIGN.md section 15)\n"
      "  --help               this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off observability flags; what remains is mode + positionals.
  std::string metrics_out;
  std::string trace_out;
  std::string series_out;
  std::string profile_out;
  int serve_port = -1;  // -1 = no exporter
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--metrics-out" || arg == "--trace-out" ||
               arg == "--series-out" || arg == "--profile-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a file path\n", arg.c_str());
        return 2;
      }
      (arg == "--metrics-out"   ? metrics_out
       : arg == "--trace-out"   ? trace_out
       : arg == "--series-out"  ? series_out
                                : profile_out) = argv[++i];
    } else if (arg == "--precision") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "error: --precision requires a value "
                     "(float32|int16|int8)\n");
        return 2;
      }
      const std::string value = argv[++i];
      if (value == "float32") {
        g_precision = core::KernelPrecision::kFloat32;
      } else if (value == "int16") {
        g_precision = core::KernelPrecision::kInt16;
      } else if (value == "int8") {
        g_precision = core::KernelPrecision::kInt8;
      } else {
        std::fprintf(stderr,
                     "error: --precision: unknown precision '%s' "
                     "(float32|int16|int8)\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--serve") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --serve requires a port (0 = any)\n");
        return 2;
      }
      char* end = nullptr;
      const long port = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
        std::fprintf(stderr, "error: --serve: bad port %s\n", argv[i]);
        return 2;
      }
      serve_port = static_cast<int>(port);
    } else if (i > 0 && arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "error: unknown flag %s (see trace_tool --help)\n",
                   arg.c_str());
      return 2;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  std::unique_ptr<obs::ChromeTraceSink> trace_sink;
  if (!trace_out.empty()) {
    trace_sink = std::make_unique<obs::ChromeTraceSink>(trace_out);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   trace_out.c_str());
      return 2;
    }
    obs::set_trace_sink(trace_sink.get());
  }
  obs::SpanProfiler profiler;
  if (!profile_out.empty()) profiler.start();
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (serve_port >= 0) {
    exporter = std::make_unique<obs::MetricsExporter>(
        obs::MetricsExporter::Options{
            "127.0.0.1", static_cast<std::uint16_t>(serve_port)},
        [] { return obs::Registry::global().snapshot(); });
    if (!exporter->start()) {
      std::fprintf(stderr, "error: cannot serve on 127.0.0.1:%d\n",
                   serve_port);
      return 2;
    }
    std::printf("serving /metrics and /healthz on 127.0.0.1:%u\n",
                exporter->port());
  }
  // Write the requested artefacts no matter how a mode exits. Background
  // machinery stops in dependency order — profiler (samples spans) first,
  // then the exporter (reads the registry), then the trace sink (closes
  // the JSON array the profiler's spans were still feeding).
  const auto finish = [&](int rc) {
    profiler.stop();
    if (!profile_out.empty()) {
      const obs::FoldedProfile profile = profiler.profile();
      std::ofstream out(profile_out);
      out << profile.to_folded();
      if (out) {
        std::printf("profile written to %s (%llu samples, %llu ticks)\n",
                    profile_out.c_str(),
                    static_cast<unsigned long long>(profile.total_samples),
                    static_cast<unsigned long long>(profile.ticks));
        const std::string table = profile.attribution_table();
        std::fputs(table.c_str(), stdout);
      } else {
        std::fprintf(stderr, "error: failed to write %s\n",
                     profile_out.c_str());
        rc = rc == 0 ? 2 : rc;
      }
    }
    if (exporter != nullptr) {
      std::printf("exporter served %llu requests\n",
                  static_cast<unsigned long long>(exporter->requests()));
      exporter->stop();
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      out << obs::Registry::global().snapshot().to_json() << "\n";
      if (out) {
        std::printf("metrics written to %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "error: failed to write %s\n",
                     metrics_out.c_str());
        rc = rc == 0 ? 2 : rc;
      }
    }
    if (trace_sink != nullptr) {
      obs::set_trace_sink(nullptr);
      const auto events = trace_sink->events_written();
      trace_sink.reset();  // closes the JSON array
      std::printf("trace written to %s (%llu spans)\n", trace_out.c_str(),
                  static_cast<unsigned long long>(events));
    }
    return rc;
  };

  const std::string mode = argc > 1 ? argv[1] : "demo";

  if (mode == "campaign") {
    const std::size_t queries =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 25;
    return finish(run_campaign_mode(3, queries, series_out));
  }
  if (!series_out.empty()) {
    std::fprintf(stderr, "error: --series-out only applies to campaign mode\n");
    return 2;
  }

  if (mode == "record") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: trace_tool record <trace.csv> [seed]\n");
      return finish(2);
    }
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;
    std::printf("recording a 300 s drive (seed %llu)...\n",
                static_cast<unsigned long long>(seed));
    const auto trace = record(seed, 300.0);
    trace.save_csv(argv[2]);
    summarize("recorded", trace);
    std::printf("saved to %s\n", argv[2]);
    return finish(0);
  }

  if (mode == "replay") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: trace_tool replay <trace.csv>\n");
      return finish(2);
    }
    const auto trace = sim::VehicleTrace::load_csv(argv[2]);
    summarize("loaded", trace);
    const auto engine = replay(trace);
    std::printf("replayed: odometer %.1f m, context %zu m, coverage %.1f%%\n",
                engine.odometer_m(), engine.context().size(),
                100.0 * engine.context().measured_fraction());
    return finish(0);
  }

  // demo: record, round-trip through CSV, replay, verify equivalence.
  const auto path = std::filesystem::temp_directory_path() / "rups_demo.csv";
  std::printf("1) recording a 300 s drive...\n");
  const auto trace = record(3, 300.0);
  summarize("   recorded", trace);

  std::printf("2) CSV round trip via %s...\n", path.c_str());
  trace.save_csv(path);
  const auto loaded = sim::VehicleTrace::load_csv(path);
  summarize("   reloaded", loaded);

  std::printf("3) replaying through a fresh engine...\n");
  const auto engine = replay(loaded);
  std::printf("   odometer %.1f m, context %zu m\n", engine.odometer_m(),
              engine.context().size());

  const bool ok = loaded.rssi.size() == trace.rssi.size() &&
                  engine.context().size() > 100;
  std::printf("\ntrace-driven workflow %s: the captured streams rebuild the\n"
              "same journey context offline — evaluation never needs the\n"
              "original drive again.\n",
              ok ? "VERIFIED" : "FAILED");
  std::filesystem::remove(path);
  return finish(ok ? 0 : 1);
}
