// GSM survey tool: reproduces the paper's Sec. III field methodology on the
// synthetic radio environment — collect GSM-aware trajectories over sampled
// road segments and report the three temporal-spatial properties that make
// them usable as temporary fingerprints: temporary stability, geographical
// uniqueness, fine resolution.
//
//   $ ./gsm_survey [seed] [segments]
//
// Useful both as a demonstration of the survey API and as a quick check of
// any re-calibrated radio-environment profile.

#include <cstdio>
#include <cstdlib>

#include "gsm/gsm_field.hpp"
#include "road/road_network.hpp"
#include "sim/survey.hpp"
#include "util/stats.hpp"

using namespace rups;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2016;
  const std::size_t segments =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40;

  const auto plan = gsm::ChannelPlan::full_r_gsm_900();
  std::printf("R-GSM-900 band: %zu channels, %.0f ms/channel dwell, %.2f s sweep\n",
              plan.size(), gsm::ChannelPlan::kChannelDwellSeconds * 1000.0,
              plan.sweep_seconds());

  gsm::GsmField field(seed, plan);
  sim::GsmSurvey survey(&field);
  const auto net = road::RoadNetwork::generate(
      seed, segments, 150.0,
      {road::EnvironmentType::kDowntown, road::EnvironmentType::kFourLaneUrban,
       road::EnvironmentType::kTwoLaneSuburb});
  std::printf("surveying %zu road segments x 150 m "
              "(downtown / urban / suburban mix)\n\n",
              net.size());

  // Property 1: temporary stability (Fig 2's recipe).
  std::printf("[1] temporary stability  P(power-vector corr >= thr | gap)\n");
  for (double gap_min : {1.0, 5.0, 25.0}) {
    const double p08 = survey.temporal_stability_probability(
        net, gap_min * 60.0, 0.8, plan.size(), 200, 1);
    const double p09 = survey.temporal_stability_probability(
        net, gap_min * 60.0, 0.9, plan.size(), 200, 1);
    std::printf("    gap %4.0f min : P(>=0.8) = %.3f   P(>=0.9) = %.3f\n",
                gap_min, p08, p09);
  }

  // Property 2: geographical uniqueness (Fig 3's recipe).
  const auto same =
      survey.uniqueness_correlations(net, true, 1800.0, 150.0, 40, 2);
  const auto diff =
      survey.uniqueness_correlations(net, false, 1800.0, 150.0, 40, 2);
  std::printf("\n[2] geographical uniqueness  (trajectory correlation, eq. 2)\n");
  std::printf("    same road, 30 min apart : mean %.3f\n", util::mean(same));
  std::printf("    different roads         : mean %.3f\n", util::mean(diff));
  std::printf("    separation vs coherency threshold 1.2: %s\n",
              util::mean(same) > 1.2 && util::mean(diff) < 1.2
                  ? "usable as a fingerprint"
                  : "NOT separable");

  // Property 3: fine resolution (Fig 4's recipe).
  std::printf("\n[3] fine resolution  (relative change of linear power, eq. 3)\n");
  for (double d : {1.0, 10.0, 60.0, 120.0}) {
    std::printf("    %3.0f m apart : %.3f\n", d,
                survey.mean_relative_change(net, d, 200, 3));
  }
  std::printf("\nconclusion: GSM-aware trajectories are stable in time,\n"
              "unique in space, and resolve displacement at metre scale —\n"
              "the three properties RUPS builds on.\n");
  return 0;
}
