// rups_matcherd: long-lived sharded matcher service daemon. A CityFleet
// workload feeds a service::MatcherService round by round (register,
// observe, submit, drain) while a MetricsExporter serves the registry
// snapshot as Prometheus text on /metrics and the HealthMonitor verdict —
// including the admission-reject rule — on /healthz:
//
//   $ ./rups_matcherd --port 9465 --vehicles 200 --shards 4 &
//   $ curl -s localhost:9465/metrics | grep service_admission
//   $ curl -si localhost:9465/healthz          # 200 healthy / 503 degraded
//
// --port 0 (the default) binds an ephemeral port and prints it. --selfcheck
// runs a short campaign, asserts the service actually produced estimates,
// and scrapes its own endpoints through obs::http_get (used by ctest).
//
// Exit codes: 0 = clean run / selfcheck passed, 1 = selfcheck or exporter
// failure, 2 = usage error.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "service/matcher_service.hpp"
#include "sim/service_sim.hpp"
#include "util/thread_pool.hpp"

using namespace rups;

namespace {

struct Options {
  int port = 0;                // 0 = ephemeral, printed after bind
  std::size_t vehicles = 64;   // city fleet size
  std::size_t shards = 4;      // regional shards
  std::size_t rounds = 0;      // query rounds after warm-up (0 = unbounded)
  std::size_t warmup = 4;      // context-feeding rounds before queries
  std::size_t threads = 0;     // pooled drain workers (0 = serial)
  std::uint64_t seed = 0xC17F;
  bool selfcheck = false;
};

void print_help() {
  std::printf(
      "usage: rups_matcherd [flags]\n"
      "\n"
      "Runs a city fleet through the sharded matcher service round by round\n"
      "and serves live Prometheus metrics on /metrics plus the health\n"
      "verdict (admission rule included) on /healthz while it runs.\n"
      "\n"
      "flags:\n"
      "  --port N       TCP port for /metrics (default 0 = ephemeral)\n"
      "  --vehicles N   city fleet size (default 64, min 2)\n"
      "  --shards N     regional shard count (default 4, min 1)\n"
      "  --rounds N     query rounds after warm-up (default 0 = unbounded)\n"
      "  --warmup N     context rounds before queries (default 4)\n"
      "  --threads N    pooled drain workers (default 0 = serial drain)\n"
      "  --seed N       workload seed (default 0xC17F)\n"
      "  --selfcheck    short campaign, then scrape /metrics + /healthz\n"
      "                 through obs::http_get and exit non-zero on failure\n"
      "  --help         this text\n");
}

/// Self-scrape: fetches both endpoints over a real socket, requires the
/// admission family in the exposition and a parseable health report.
bool selfcheck_scrape(const obs::MetricsExporter& exporter) {
  std::string body;
  const int status =
      obs::http_get("127.0.0.1", exporter.port(), "/metrics", body);
  if (status != 200) {
    std::fprintf(stderr, "selfcheck: GET /metrics -> %d\n", status);
    return false;
  }
  if (body.find("service_admission{reason=") == std::string::npos) {
    std::fprintf(stderr, "selfcheck: /metrics lacks service_admission cells\n");
    return false;
  }
  try {
    const auto samples = obs::parse_prometheus(body);
    if (samples.empty()) {
      std::fprintf(stderr, "selfcheck: /metrics parsed to zero samples\n");
      return false;
    }
    std::printf("selfcheck: /metrics ok (%zu samples, %zu bytes)\n",
                samples.size(), body.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selfcheck: /metrics unparseable: %s\n", e.what());
    return false;
  }

  std::string health;
  const int hstatus =
      obs::http_get("127.0.0.1", exporter.port(), "/healthz", health);
  if (hstatus != 200 && hstatus != 503) {
    std::fprintf(stderr, "selfcheck: GET /healthz -> %d\n", hstatus);
    return false;
  }
  if (health.find("\"healthy\"") == std::string::npos) {
    std::fprintf(stderr, "selfcheck: /healthz body is not a health report\n");
    return false;
  }
  std::printf("selfcheck: /healthz ok (%d)\n", hstatus);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--port") {
      opt.port = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (arg == "--vehicles") {
      opt.vehicles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--shards") {
      opt.shards = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--rounds") {
      opt.rounds = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--warmup") {
      opt.warmup = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--threads") {
      opt.threads = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--selfcheck") {
      opt.selfcheck = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown flag %s (see rups_matcherd --help)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (opt.vehicles < 2) {
    std::fprintf(stderr, "error: --vehicles must be at least 2\n");
    return 2;
  }
  if (opt.shards < 1) {
    std::fprintf(stderr, "error: --shards must be at least 1\n");
    return 2;
  }
  if (opt.port < 0 || opt.port > 65535) {
    std::fprintf(stderr, "error: --port must be 0..65535\n");
    return 2;
  }
  if (opt.selfcheck && opt.rounds == 0) opt.rounds = 8;

  sim::CityFleetConfig city_cfg;
  city_cfg.vehicles = opt.vehicles;
  city_cfg.seed = opt.seed;
  sim::CityFleet city(city_cfg);

  service::ServiceConfig svc_cfg;
  svc_cfg.shard_count = opt.shards;
  svc_cfg.max_vehicles = opt.vehicles;
  svc_cfg.max_sessions = 2 * opt.vehicles;
  svc_cfg.queue_capacity = opt.vehicles + 16;
  svc_cfg.fleet.rups.channels = city_cfg.channels;
  svc_cfg.fleet.rups.context_capacity_m = city_cfg.context_capacity_m;
  service::MatcherService svc(svc_cfg);

  obs::HealthMonitor monitor{};
  svc.set_health_monitor(&monitor);

  std::optional<util::ThreadPool> pool;
  if (opt.threads > 0) pool.emplace(opt.threads);

  obs::MetricsExporter::Options exporter_opt;
  exporter_opt.port = static_cast<std::uint16_t>(opt.port);
  obs::MetricsExporter exporter(
      exporter_opt,
      [] {
        if (obs::alloc_census_enabled()) obs::publish_alloc_census();
        return obs::Registry::global().snapshot();
      },
      [&monitor] { return monitor.report(); });
  if (!exporter.start()) {
    std::fprintf(stderr, "error: exporter failed to bind port %d\n", opt.port);
    return 1;
  }
  std::printf(
      "rups_matcherd: serving /metrics and /healthz on 127.0.0.1:%u\n",
      exporter.port());
  std::printf(
      "rups_matcherd: %zu vehicles, %zu shards, %s drain, %s rounds\n",
      opt.vehicles, opt.shards, opt.threads > 0 ? "pooled" : "serial",
      opt.rounds == 0 ? "unbounded" : std::to_string(opt.rounds).c_str());

  for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
    if (!svc.register_vehicle(city.vehicle_id(v), city.position(v))) {
      std::fprintf(stderr, "error: vehicle arena rejected id %llu\n",
                   static_cast<unsigned long long>(city.vehicle_id(v)));
      exporter.stop();
      return 1;
    }
  }

  std::size_t rounds_done = 0;
  std::uint64_t accepted = 0;
  std::uint64_t estimates = 0;
  std::vector<service::MatcherService::Ticket> tickets;
  bool scraped_mid_campaign = !opt.selfcheck;
  for (std::size_t round = 0;
       opt.rounds == 0 || round < opt.warmup + opt.rounds; ++round) {
    city.advance_round();
    svc.begin_round();
    for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
      for (const sim::CityFleet::Sample& s : city.samples(v)) {
        (void)svc.observe(city.vehicle_id(v), s.position_m, s.geo, s.power);
      }
    }
    if (round < opt.warmup) continue;

    tickets.clear();
    for (const sim::CityFleet::Query& q : city.queries()) {
      tickets.push_back(
          svc.submit(city.vehicle_id(q.ego), city.vehicle_id(q.neighbour)));
    }
    svc.drain(pool ? &*pool : nullptr);
    ++rounds_done;

    for (std::size_t i = 0; i < tickets.size(); ++i) {
      if (!tickets[i].accepted()) continue;
      ++accepted;
      const auto& r = svc.result(tickets[i]);
      if (r.estimate.has_value()) {
        ++estimates;
        const sim::CityFleet::Query& q = city.queries()[i];
        monitor.on_query(true,
                         std::abs(r.estimate->distance_m - city.truth_m(q)),
                         r.latency_us);
      } else {
        monitor.on_query(false, std::nullopt, r.latency_us);
      }
    }

    // Mid-campaign probe: the exporter must serve while rounds run.
    if (!scraped_mid_campaign && rounds_done == opt.rounds / 2 + 1) {
      scraped_mid_campaign = true;
      std::string body;
      const int status =
          obs::http_get("127.0.0.1", exporter.port(), "/metrics", body);
      if (status != 200 || body.empty()) {
        std::fprintf(stderr, "selfcheck: mid-campaign scrape -> %d\n", status);
        exporter.stop();
        return 1;
      }
      std::printf("selfcheck: mid-campaign scrape ok (round %zu)\n",
                  rounds_done);
    }
  }

  const obs::HealthReport report = monitor.report();
  std::printf(
      "rups_matcherd: %zu query rounds, %llu accepted, %llu estimates, "
      "health %s\n",
      rounds_done, static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(estimates),
      report.healthy() ? "ok" : "degraded");

  int rc = 0;
  if (opt.selfcheck) {
    if (rounds_done == 0 || accepted == 0 || estimates == 0) {
      std::fprintf(stderr, "selfcheck: campaign produced no estimates\n");
      rc = 1;
    } else if (!selfcheck_scrape(exporter)) {
      rc = 1;
    }
  }
  // Ordered shutdown: exporter before any trace sink teardown (atexit).
  exporter.stop();
  std::printf("rups_matcherd: exporter served %llu requests\n",
              static_cast<unsigned long long>(exporter.requests()));
  if (opt.selfcheck) {
    std::printf("rups_matcherd selfcheck: %s\n", rc == 0 ? "PASS" : "FAIL");
  }
  return rc;
}
