// rups_exporterd: long-lived ops daemon around one fleet simulation. It
// drives beacon rounds on the campaign cadence (warm-up, then
// run_until + query_round per interval) with a live HealthMonitor wired
// into the fleet, while a MetricsExporter serves the registry snapshot as
// Prometheus text on /metrics and the monitor's verdict on /healthz:
//
//   $ ./rups_exporterd --port 9464 &
//   $ curl -s localhost:9464/metrics | grep fleet_query_outcome
//   $ curl -si localhost:9464/healthz          # 200 healthy / 503 degraded
//
// --port 0 (the default) binds an ephemeral port and prints it, so the
// daemon is usable in tests without a port reservation. --selfcheck runs a
// short campaign and scrapes its own endpoints through obs::http_get — a
// curl-free end-to-end proof that the scrape path works (used by ctest and
// the CI matrix).
//
// Exit codes: 0 = clean run / selfcheck passed, 1 = selfcheck or exporter
// failure, 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/obs.hpp"
#include "sim/fleet_sim.hpp"

using namespace rups;

namespace {

struct Options {
  int port = 0;              // 0 = ephemeral, printed after bind
  std::size_t vehicles = 5;  // ego + 4 neighbours
  std::size_t rounds = 0;    // 0 = run until the route ends
  double interval_s = 3.0;   // beacon cadence (sim seconds)
  std::uint64_t seed = 7;
  bool selfcheck = false;
};

void print_help() {
  std::printf(
      "usage: rups_exporterd [flags]\n"
      "\n"
      "Runs an urban-profile fleet campaign round by round and serves live\n"
      "Prometheus metrics on /metrics plus the health verdict on /healthz\n"
      "while it runs.\n"
      "\n"
      "flags:\n"
      "  --port N       TCP port for /metrics (default 0 = ephemeral)\n"
      "  --vehicles N   convoy size, ego included (default 5, min 2)\n"
      "  --rounds N     beacon rounds after warm-up (default 0 = route end)\n"
      "  --interval S   sim-seconds between rounds (default 3)\n"
      "  --seed N       scenario seed (default 7)\n"
      "  --selfcheck    short campaign, then scrape /metrics + /healthz\n"
      "                 through obs::http_get and exit non-zero on failure\n"
      "  --help         this text\n");
}

/// Self-scrape: the acceptance probe for the whole export path. Fetches
/// both endpoints over a real socket and checks the exposition carries the
/// fleet outcome family (sanitized: fleet_query_outcome{outcome="..."})
/// and parses back through parse_prometheus.
bool selfcheck_scrape(const obs::MetricsExporter& exporter) {
  std::string body;
  const int status =
      obs::http_get("127.0.0.1", exporter.port(), "/metrics", body);
  if (status != 200) {
    std::fprintf(stderr, "selfcheck: GET /metrics -> %d\n", status);
    return false;
  }
  if (body.find("fleet_query_outcome{outcome=") == std::string::npos) {
    std::fprintf(stderr,
                 "selfcheck: /metrics lacks fleet_query_outcome cells\n");
    return false;
  }
  try {
    const auto samples = obs::parse_prometheus(body);
    if (samples.empty()) {
      std::fprintf(stderr, "selfcheck: /metrics parsed to zero samples\n");
      return false;
    }
    std::printf("selfcheck: /metrics ok (%zu samples, %zu bytes)\n",
                samples.size(), body.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selfcheck: /metrics unparseable: %s\n", e.what());
    return false;
  }

  std::string health;
  const int hstatus =
      obs::http_get("127.0.0.1", exporter.port(), "/healthz", health);
  // 200 healthy and 503 degraded are both valid verdicts; anything else
  // means the endpoint itself is broken.
  if (hstatus != 200 && hstatus != 503) {
    std::fprintf(stderr, "selfcheck: GET /healthz -> %d\n", hstatus);
    return false;
  }
  if (health.find("\"healthy\"") == std::string::npos) {
    std::fprintf(stderr, "selfcheck: /healthz body is not a health report\n");
    return false;
  }
  std::printf("selfcheck: /healthz ok (%d)\n", hstatus);

  const int missing =
      obs::http_get("127.0.0.1", exporter.port(), "/nonesuch", body);
  if (missing != 404) {
    std::fprintf(stderr, "selfcheck: GET /nonesuch -> %d (want 404)\n",
                 missing);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--port") {
      opt.port = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (arg == "--vehicles") {
      opt.vehicles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--rounds") {
      opt.rounds = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--interval") {
      opt.interval_s = std::strtod(value(), nullptr);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--selfcheck") {
      opt.selfcheck = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown flag %s (see rups_exporterd --help)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (opt.vehicles < 2) {
    std::fprintf(stderr, "error: --vehicles must be at least 2\n");
    return 2;
  }
  if (opt.port < 0 || opt.port > 65535) {
    std::fprintf(stderr, "error: --port must be 0..65535\n");
    return 2;
  }
  if (opt.selfcheck && opt.rounds == 0) opt.rounds = 6;

  // Stock urban profile, matching telemetry_report: four-lane urban
  // environment with the urban packet-fault mix on every exchange.
  sim::Scenario scenario = sim::Scenario::fleet(
      opt.seed, road::EnvironmentType::kFourLaneUrban, opt.vehicles);
  sim::FleetCampaignConfig cfg;
  cfg.base.interval_s = opt.interval_s;
  cfg.base.fault = v2v::FaultConfig::urban();
  sim::FleetSimulation fleet(scenario, cfg);

  // The daemon owns the health monitor (run_fleet_campaign is not used
  // here: rounds are driven manually so scrapes interleave with work) and
  // the exporter reads it live.
  obs::HealthMonitor monitor(cfg.base.health);
  fleet.set_health_monitor(&monitor);

  obs::MetricsExporter::Options exporter_opt;
  exporter_opt.port = static_cast<std::uint16_t>(opt.port);
  obs::MetricsExporter exporter(
      exporter_opt,
      [] {
        if (obs::alloc_census_enabled()) obs::publish_alloc_census();
        return obs::Registry::global().snapshot();
      },
      [&monitor] { return monitor.report(); });
  if (!exporter.start()) {
    std::fprintf(stderr, "error: exporter failed to bind port %d\n", opt.port);
    return 1;
  }
  std::printf("rups_exporterd: serving /metrics and /healthz on 127.0.0.1:%u\n",
              exporter.port());
  std::printf(
      "rups_exporterd: %zu vehicles, interval %.1f sim-s, %s rounds\n",
      opt.vehicles, opt.interval_s,
      opt.rounds == 0 ? "unbounded" : std::to_string(opt.rounds).c_str());

  fleet.run_until(cfg.base.warmup_s);
  double t = cfg.base.warmup_s;
  std::size_t rounds_done = 0;
  std::size_t hits = 0;
  std::size_t outcomes = 0;
  bool scraped_mid_campaign = !opt.selfcheck;
  while (!fleet.sim().finished() &&
         (opt.rounds == 0 || rounds_done < opt.rounds)) {
    t += opt.interval_s;
    fleet.run_until(t);
    if (fleet.sim().finished()) break;
    const sim::FleetRound round = fleet.query_round();
    ++rounds_done;
    for (const sim::FleetQueryOutcome& o : round.outcomes) {
      ++outcomes;
      if (o.result.estimate.has_value()) ++hits;
    }
    // Mid-campaign probe: the exporter must serve while rounds run, not
    // only after the workload goes quiet.
    if (!scraped_mid_campaign && rounds_done == opt.rounds / 2 + 1) {
      scraped_mid_campaign = true;
      std::string body;
      const int status =
          obs::http_get("127.0.0.1", exporter.port(), "/metrics", body);
      if (status != 200 || body.empty()) {
        std::fprintf(stderr, "selfcheck: mid-campaign scrape -> %d\n", status);
        exporter.stop();
        return 1;
      }
      std::printf("selfcheck: mid-campaign scrape ok (round %zu)\n",
                  rounds_done);
    }
  }
  const obs::HealthReport report = monitor.report();
  std::printf(
      "rups_exporterd: %zu rounds, %zu/%zu estimates, health %s, v2v bytes "
      "%zu\n",
      rounds_done, hits, outcomes, report.healthy() ? "ok" : "degraded",
      fleet.v2v_bytes());

  int rc = 0;
  if (opt.selfcheck) {
    if (rounds_done == 0 || outcomes == 0) {
      std::fprintf(stderr, "selfcheck: campaign produced no outcomes\n");
      rc = 1;
    } else if (!selfcheck_scrape(exporter)) {
      rc = 1;
    }
  }
  // Ordered shutdown: exporter before any trace sink teardown (atexit), so
  // no scrape can race the process unwinding underneath it.
  exporter.stop();
  std::printf("rups_exporterd: exporter served %llu requests\n",
              static_cast<unsigned long long>(exporter.requests()));
  if (opt.selfcheck) {
    std::printf("rups_exporterd selfcheck: %s\n", rc == 0 ? "PASS" : "FAIL");
  }
  return rc;
}
