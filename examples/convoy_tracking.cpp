// Convoy tracking: the intro's motivating safety application. The rear car
// continuously tracks the front car at 2 Hz using the Sec. V-B strategy —
// one full context exchange to lock a SYN point, then cheap incremental
// tail updates — and raises an alert when the gap closes fast (front car
// braking hard).
//
//   $ ./convoy_tracking [seed]

#include <cstdio>
#include <cstdlib>

#include "core/tracker.hpp"
#include "sim/convoy_sim.hpp"
#include "v2v/exchange.hpp"

using namespace rups;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  sim::Scenario scenario = sim::Scenario::two_car(
      seed, road::EnvironmentType::kEightLaneUrban, /*gap_m=*/45.0);
  scenario.route_length_m = 10'000.0;
  scenario.traffic = vehicle::TrafficDensity::kModerate;

  sim::ConvoySimulation sim(scenario);
  std::printf("warming up (sensor calibration + context build)...\n");
  sim.run_until(400.0);

  const auto& front = sim.rig(0);
  const auto& rear = sim.rig(1);

  // Initial full exchange locks the tracker.
  v2v::DsrcLink link(seed);
  v2v::ExchangeSession session(&link);
  core::NeighbourTracker::Config tracker_cfg;
  tracker_cfg.syn = rear.engine().config().syn;
  core::NeighbourTracker tracker(tracker_cfg);

  auto full = session.exchange_full(front.engine().context());
  if (!tracker.initialize(rear.engine().context(), full.trajectory)) {
    std::printf("could not lock a SYN point — aborting\n");
    return 1;
  }
  std::printf("SYN lock acquired (full exchange: %zu B, %.3f s)\n\n",
              full.stats.payload_bytes, full.stats.duration_s);
  std::printf("%8s %10s %10s %8s %9s %s\n", "t(s)", "est(m)", "truth(m)",
              "err(m)", "bytes", "event");

  double prev_gap = 0.0;
  bool have_prev = false;
  int refreshes = 0, alerts = 0;
  std::size_t incremental_bytes = 0;

  for (double t = 400.5; t <= 520.0; t += 0.5) {
    sim.run_until(t);

    // Incremental tail update from the front car (its newest metres only).
    const core::ContextTrajectory* cached = tracker.neighbour();
    const std::uint64_t since =
        cached->first_metre() + cached->size();
    const auto tail = session.exchange_tail(front.engine().context(), since);
    incremental_bytes += tail.stats.payload_bytes;
    tracker.ingest_tail(tail.trajectory);

    // Maintenance: narrow re-verify / drift accounting; full refresh when
    // the tracker asks for one.
    if (!tracker.maintain(rear.engine().context()) ||
        tracker.needs_full_refresh()) {
      full = session.exchange_full(front.engine().context());
      tracker.initialize(rear.engine().context(), full.trajectory);
      ++refreshes;
    }

    const auto est = tracker.estimate(rear.engine().context());
    if (!est.has_value()) continue;
    const double truth =
        rear.state().position_m - front.state().position_m;
    const double gap = -est->distance_m;  // distance to the car ahead

    const char* event = "";
    if (have_prev) {
      const double closing_mps = (prev_gap - gap) / 0.5;
      if (closing_mps > 3.0 && gap < 40.0) {
        event = "!! CLOSING FAST — front car braking";
        ++alerts;
      }
    }
    prev_gap = gap;
    have_prev = true;

    // Print once a second (queries run at 2 Hz).
    if (std::fmod(t, 5.0) < 0.25 || event[0] != '\0') {
      std::printf("%8.1f %10.2f %10.2f %8.2f %9zu %s\n", t, est->distance_m,
                  truth, std::abs(est->distance_m - truth),
                  tail.stats.payload_bytes, event);
    }
  }

  std::printf("\ntracked 120 s at 2 Hz: %d full refreshes, %zu B incremental"
              " (vs %zu B per full exchange), %d hard-brake alerts\n",
              refreshes, incremental_bytes, full.stats.payload_bytes, alerts);
  return 0;
}
