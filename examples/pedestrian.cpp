// Pedestrian extension (paper Sec. VII future work): RUPS for "users of
// mobile devices such as pedestrians and bicyclists". A walker has no OBD
// port, so speed comes from step counting on the phone's accelerometer
// (core::StepCounter); everything downstream — trajectory binding, SYN
// search, distance resolution — runs unchanged.
//
// Scenario: a pedestrian walks along an urban sidewalk; a jogger runs the
// same street 30 m ahead, slowly pulling away. Both scan GSM with their
// phones (one radio each, the hardest scanning regime) and exchange
// contexts.
//
//   $ ./pedestrian [seed]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "core/step_counter.hpp"
#include "gsm/gsm_field.hpp"
#include "road/route_builder.hpp"
#include "sensors/gsm_scanner.hpp"
#include "util/rng.hpp"

using namespace rups;

namespace {

/// A walking/riding agent: ground truth position + phone sensors feeding a
/// RUPS engine. Speed is estimated from steps (pedestrian) or a cheap
/// wheel sensor approximated as exact cadence (cyclist).
class Agent {
 public:
  Agent(const char* name, std::uint64_t seed, double start_m,
        double speed_mps, double cadence_hz, const road::Route* route,
        const gsm::GsmField* field)
      : name_(name),
        route_(route),
        field_(field),
        speed_mps_(speed_mps),
        cadence_hz_(cadence_hz),
        position_m_(start_m),
        rng_(seed),
        scanner_(&field->plan(), seed, scanner_config()) {
    core::RupsConfig cfg;
    cfg.channels = field->plan().size();
    cfg.assume_aligned_sensors = true;  // phone held steady in hand
    // Walking covers little ground: shorter window, adaptive enabled.
    cfg.syn.window_m = 40;
    cfg.syn.top_channels = 30;
    cfg.context_capacity_m = 400;
    engine_ = std::make_unique<core::RupsEngine>(cfg);
    core::StepCounter::Config sc;
    sc.stride_m = speed_mps / cadence_hz;  // calibrated stride
    steps_ = std::make_unique<core::StepCounter>(sc);
  }

  void tick(double t, double dt) {
    position_m_ += speed_mps_ * dt;
    // Accelerometer magnitude with the gait bounce.
    const double accel =
        9.80665 + 3.0 * std::sin(2.0 * M_PI * cadence_hz_ * t) +
        rng_.gaussian(0.0, 0.15);
    if (const auto speed = steps_->on_accel(t, accel)) {
      engine_->on_speed(*speed);
    }
    sensors::ImuSample imu;
    imu.time_s = t;
    imu.accel_mps2 = {0.0, 0.0, accel};
    imu.mag_ut = {-30.0, 0.0, -35.0};
    engine_->on_imu(imu);

    measurements_.clear();
    const auto pose = route_->pose_at(position_m_);
    const auto& segment = route_->segments()[pose.segment_index];
    scanner_.advance(t,
                     [&](std::size_t c, double tt) {
                       return field_->rssi_dbm(segment, pose.segment_offset_m,
                                               /*lane=*/0, c, tt);
                     },
                     measurements_);
    for (const auto& m : measurements_) engine_->on_rssi(m);
  }

  [[nodiscard]] double position() const { return position_m_; }
  [[nodiscard]] const core::RupsEngine& engine() const { return *engine_; }
  [[nodiscard]] const char* name() const { return name_; }

 private:
  static sensors::GsmScanner::Config scanner_config() {
    sensors::GsmScanner::Config cfg;
    cfg.radios = 1;  // one phone
    return cfg;
  }

  const char* name_;
  const road::Route* route_;
  const gsm::GsmField* field_;
  double speed_mps_, cadence_hz_, position_m_;
  util::Rng rng_;
  sensors::GsmScanner scanner_;
  std::unique_ptr<core::RupsEngine> engine_;
  std::unique_ptr<core::StepCounter> steps_;
  std::vector<sensors::RssiMeasurement> measurements_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  const auto route = road::make_uniform_route(
      seed, road::EnvironmentType::kFourLaneUrban, 2'000.0);
  const auto plan = gsm::ChannelPlan::evaluation_subset(seed, 80);
  gsm::GsmField field(seed, plan);

  Agent walker("pedestrian", seed * 3 + 1, 0.0, /*speed=*/1.4,
               /*cadence=*/2.0, &route, &field);
  Agent jogger("jogger", seed * 3 + 2, 30.0, /*speed=*/1.9,
               /*cadence=*/2.6, &route, &field);

  std::printf("pedestrian (1.4 m/s) and jogger (1.9 m/s) share a sidewalk;\n"
              "speed from STEP COUNTING, one GSM radio each.\n\n");
  std::printf("%8s %14s %14s %10s\n", "t(s)", "truth gap(m)", "RUPS gap(m)",
              "err(m)");

  int resolved = 0, asked = 0;
  for (long i = 0; i <= 48'000; ++i) {
    const double t = static_cast<double>(i) * 0.01;
    walker.tick(t, 0.01);
    jogger.tick(t, 0.01);
    if (i % 6'000 == 0 && t >= 120.0) {
      ++asked;
      const double truth = walker.position() - jogger.position();
      const auto est =
          walker.engine().estimate_distance(jogger.engine().context());
      if (est.has_value()) {
        ++resolved;
        std::printf("%8.0f %14.1f %14.1f %10.2f\n", t, truth,
                    est->distance_m, std::abs(est->distance_m - truth));
      } else {
        std::printf("%8.0f %14.1f %14s %10s\n", t, truth, "-", "no SYN");
      }
    }
  }
  std::printf("\nwalker steps: %s; resolved %d/%d queries\n",
              "counted on-device", resolved, asked);
  std::printf("conclusion: the RUPS pipeline is speed-source agnostic — a\n"
              "step counter replaces the OBD feed and nothing else changes.\n");
  return resolved > 0 ? 0 : 1;
}
