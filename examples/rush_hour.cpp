// Rush hour: heavy traffic on an 8-lane urban major. Three instrumented
// vehicles drive in a loose platoon; a fourth drives a DIFFERENT road. The
// example shows (a) pairwise relative distance fixing inside the platoon,
// (b) rejection of the unrelated vehicle (no shared trajectory => no SYN
// point), and (c) the Sec. V-B bandwidth arithmetic under heavy traffic,
// where shrinking gaps let vehicles shrink the context scope they exchange.
//
//   $ ./rush_hour [seed]

#include <cstdio>
#include <cstdlib>

#include "sim/convoy_sim.hpp"
#include "v2v/codec.hpp"
#include "v2v/exchange.hpp"

using namespace rups;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  // A three-car platoon in heavy traffic.
  sim::Scenario scenario;
  scenario.seed = seed;
  scenario.env = road::EnvironmentType::kEightLaneUrban;
  scenario.route_length_m = 9'000.0;
  scenario.traffic = vehicle::TrafficDensity::kHeavy;
  scenario.passing_rate_scale = 1.5;
  for (int v = 0; v < 3; ++v) {
    sim::VehicleSetup setup;
    setup.seed = seed * 10 + static_cast<std::uint64_t>(v);
    setup.start_offset_m = 80.0 - 40.0 * v;  // 40 m spacing
    setup.lane = 3;
    scenario.vehicles.push_back(setup);
  }

  // An unrelated vehicle on a different road (its own simulation world).
  sim::Scenario elsewhere = sim::Scenario::two_car(
      seed + 999, road::EnvironmentType::kFourLaneUrban);
  elsewhere.route_length_m = 8'000.0;

  std::printf("driving 3-car platoon through heavy traffic (+1 car elsewhere)...\n");
  sim::ConvoySimulation platoon(scenario);
  sim::ConvoySimulation other(elsewhere);
  platoon.run_until(500.0);
  other.run_until(500.0);

  // (a) Pairwise fixing inside the platoon.
  std::printf("\npairwise relative distances (rear asks front):\n");
  for (std::size_t rear = 1; rear < 3; ++rear) {
    for (std::size_t front = 0; front < rear; ++front) {
      const auto q = platoon.query(rear, front);
      if (q.rups.has_value()) {
        std::printf("  car %zu -> car %zu : est %+8.2f m  truth %+8.2f m"
                    "  err %5.2f m  (%zu SYN)\n",
                    rear, front, q.rups->distance_m, q.truth,
                    *q.rups_error(), q.syn_points.size());
      } else {
        std::printf("  car %zu -> car %zu : NO SYN POINT\n", rear, front);
      }
    }
  }

  // (b) Unrelated vehicle rejection.
  const auto& rear_engine = platoon.rig(2).engine();
  const auto foreign =
      other.rig(0).engine().context();
  const auto foreign_syns = rear_engine.find_syn_points(foreign);
  std::printf("\nquery against a car on a different road: %s\n",
              foreign_syns.empty()
                  ? "correctly rejected (no SYN point above threshold)"
                  : "FALSE POSITIVE!");

  // (c) Heavy-traffic bandwidth: gaps shrink, so the exchanged context
  // scope can shrink with them (Sec. V-B).
  std::printf("\nbandwidth under heavy traffic (context scope ~ 4x gap):\n");
  v2v::DsrcLink link(seed);
  for (std::size_t rear = 1; rear < 3; ++rear) {
    const auto q = platoon.query(rear, rear - 1);
    const double gap = std::abs(q.truth);
    const auto scope = static_cast<std::size_t>(
        std::clamp(4.0 * gap + 100.0, 150.0, 1000.0));
    const std::size_t bytes = v2v::TrajectoryCodec::encoded_size(
        scope, platoon.scenario().channels);
    const auto stats = link.transfer(bytes);
    std::printf("  car %zu: gap %5.1f m -> scope %4zu m -> %6zu B, %zu pkts,"
                " %.3f s\n",
                rear, gap, scope, bytes, stats.packets, stats.duration_s);
  }
  return foreign_syns.empty() ? 0 : 1;
}
