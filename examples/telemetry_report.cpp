// telemetry_report: turns the dimensional telemetry of one fleet campaign
// into the operator's view — per-window latency quantiles and delivery
// rates from the sim-time windowed series, plus a per-neighbour breakdown
// (task latency from the fleet.task_us{neighbour=...} histogram family,
// estimate staleness from the first-class staleness series).
//
//   $ ./telemetry_report                       # stock urban-profile fleet run
//   $ ./telemetry_report --vehicles 9 --rounds 80
//   $ ./telemetry_report --series-in run.json  # report a saved series instead
//
// Exit codes: 0 = report produced, 1 = campaign yielded no telemetry,
// 2 = usage error.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/fleet_sim.hpp"
#include "util/csv.hpp"

using namespace rups;

namespace {

struct Options {
  std::size_t vehicles = 5;     // ego + 4 neighbours
  std::size_t rounds = 60;      // beacon rounds after warm-up
  double window_s = 30.0;       // series window cadence
  std::uint64_t seed = 7;
  std::string series_in;        // report a saved series instead of running
  std::string json_out;         // save the collected series
  std::string csv_out;          // save the collected series as wide CSV
};

void print_help() {
  std::printf(
      "usage: telemetry_report [flags]\n"
      "\n"
      "Runs an urban-profile fleet campaign (every exchange crosses the\n"
      "faulty DSRC channel) and prints the windowed telemetry: per-window\n"
      "query-latency p50/p95/p99, delivery-outcome rates, and per-neighbour\n"
      "task latency + estimate staleness.\n"
      "\n"
      "flags:\n"
      "  --vehicles N       convoy size, ego included (default 5, min 2)\n"
      "  --rounds N         beacon rounds after warm-up (default 60)\n"
      "  --window S         series window length in sim-seconds (default 30)\n"
      "  --seed N           scenario seed (default 7)\n"
      "  --series-in FILE   skip the campaign; report a saved series JSON\n"
      "  --json-out FILE    save the collected series JSON\n"
      "  --csv-out FILE     save the collected series as wide CSV\n"
      "  --help             this text\n");
}

/// Series column value or 0 when the column is absent.
double at(const obs::TimeSeriesData& series, const std::string& name,
          const char* kind, std::size_t w) {
  const obs::SeriesColumn* col = series.column(name, kind);
  return col == nullptr ? 0.0 : col->values[w];
}

/// Neighbour ids present in the staleness columns, in label order.
std::vector<std::string> staleness_neighbours(
    const obs::TimeSeriesData& series) {
  const std::string prefix = "estimate.staleness_s{neighbour=\"";
  std::vector<std::string> out;
  for (const obs::SeriesColumn& col : series.columns) {
    if (col.kind != "staleness") continue;
    if (col.name.rfind(prefix, 0) != 0) continue;
    const std::size_t end = col.name.find('"', prefix.size());
    if (end == std::string::npos) continue;
    out.push_back(col.name.substr(prefix.size(), end - prefix.size()));
  }
  return out;
}

void print_windows(const obs::TimeSeriesData& series,
                   const std::string& latency_metric) {
  std::printf("\nper-window (%zu windows of %.0f sim-s):\n", series.windows(),
              series.window_s);
  std::printf("  %-16s %8s %9s %9s %9s %10s %9s %7s\n", "window", "queries",
              "p50_us", "p95_us", "p99_us", "delivered", "degraded", "failed");
  for (std::size_t w = 0; w < series.windows(); ++w) {
    const double dur = series.window_end_s[w] - series.window_begin_s[w];
    char label[32];
    std::snprintf(label, sizeof(label), "[%.0f, %.0f)", series.window_begin_s[w],
                  series.window_end_s[w]);
    std::printf(
        "  %-16s %8.0f %9.0f %9.0f %9.0f %10.2f %9.2f %7.2f\n", label,
        at(series, latency_metric, "count", w),
        at(series, latency_metric, "p50", w),
        at(series, latency_metric, "p95", w),
        at(series, latency_metric, "p99", w),
        at(series, "v2v.delivery_outcome{outcome=\"delivered\"}", "rate", w) *
            dur,
        at(series, "v2v.delivery_outcome{outcome=\"degraded\"}", "rate", w) *
            dur,
        at(series, "v2v.delivery_outcome{outcome=\"failed\"}", "rate", w) *
            dur);
  }
}

void print_neighbours(const obs::TimeSeriesData& series,
                      const obs::MetricsSnapshot& metrics) {
  const auto ids = staleness_neighbours(series);
  if (ids.empty()) return;
  std::printf("\nper-neighbour:\n");
  std::printf("  %-10s %8s %10s %10s %12s %12s\n", "neighbour", "tasks",
              "task_p50", "task_p95", "stale_mean_s", "stale_max_s");
  for (const std::string& id : ids) {
    const std::string col =
        "estimate.staleness_s{neighbour=\"" + id + "\"}";
    double mean = 0.0;
    double max = 0.0;
    if (const obs::SeriesColumn* c = series.column(col, "staleness")) {
      for (double v : c->values) {
        mean += v;
        if (v > max) max = v;
      }
      if (!c->values.empty()) mean /= static_cast<double>(c->values.size());
    }
    const obs::HistogramSample* h =
        metrics.histogram("fleet.task_us{neighbour=\"" + id + "\"}");
    std::printf("  %-10s %8llu %10.0f %10.0f %12.2f %12.2f\n", id.c_str(),
                static_cast<unsigned long long>(h == nullptr ? 0 : h->count),
                h == nullptr ? 0.0 : obs::histogram_quantile(*h, 0.50),
                h == nullptr ? 0.0 : obs::histogram_quantile(*h, 0.95), mean,
                max);
  }
}

void print_delivery_totals(const obs::MetricsSnapshot& metrics) {
  std::printf("\ndelivery totals:\n");
  for (const char* outcome : {"delivered", "degraded", "failed"}) {
    const std::string name =
        std::string("v2v.delivery_outcome{outcome=\"") + outcome + "\"}";
    const obs::CounterSample* c = metrics.counter(name);
    std::printf("  %-10s %10llu\n", outcome,
                static_cast<unsigned long long>(c == nullptr ? 0 : c->value));
  }
}

int report_saved_series(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  obs::TimeSeriesData series;
  try {
    series = obs::TimeSeriesData::from_json(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 2;
  }
  if (series.empty()) {
    std::fprintf(stderr, "error: %s holds no windows\n", path.c_str());
    return 1;
  }
  std::printf("telemetry_report: %s (%zu windows, %zu columns)\n",
              path.c_str(), series.windows(), series.columns.size());
  // A saved series may come from either campaign shape; prefer the fleet
  // round histogram and fall back to the two-car query latency.
  const char* latency = series.column("fleetcampaign.round_us", "count")
                            ? "fleetcampaign.round_us"
                            : "campaign.query_latency_us";
  print_windows(series, latency);
  print_neighbours(series, obs::MetricsSnapshot{});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--vehicles") {
      opt.vehicles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--rounds") {
      opt.rounds = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--window") {
      opt.window_s = std::strtod(value(), nullptr);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--series-in") {
      opt.series_in = value();
    } else if (arg == "--json-out") {
      opt.json_out = value();
    } else if (arg == "--csv-out") {
      opt.csv_out = value();
    } else {
      std::fprintf(stderr,
                   "error: unknown flag %s (see telemetry_report --help)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (!opt.series_in.empty()) return report_saved_series(opt.series_in);
  if (opt.vehicles < 2) {
    std::fprintf(stderr, "error: --vehicles must be at least 2\n");
    return 2;
  }

  // Stock urban profile: the paper's four-lane urban environment with the
  // urban packet-fault mix on every V2V exchange.
  sim::Scenario scenario = sim::Scenario::fleet(
      opt.seed, road::EnvironmentType::kFourLaneUrban, opt.vehicles);
  sim::FleetCampaignConfig cfg;
  cfg.base.max_queries = opt.rounds;
  cfg.base.fault = v2v::FaultConfig::urban();
  cfg.base.series.window_s = opt.window_s;
  sim::FleetSimulation fleet(scenario, cfg);

  std::printf(
      "telemetry_report: %zu vehicles (ego + %zu neighbours), %zu rounds, "
      "urban fault profile, %.0f s windows\n",
      opt.vehicles, opt.vehicles - 1, opt.rounds, opt.window_s);
  const sim::FleetCampaignResult result = sim::run_fleet_campaign(fleet, cfg);

  std::printf("campaign: %zu rounds, availability %.2f, v2v bytes %zu\n",
              result.rounds.size(), result.availability(), result.v2v_bytes);
  if (result.rounds.empty() || result.series.empty()) {
    std::fprintf(stderr,
                 "error: campaign produced no telemetry windows (telemetry "
                 "disabled build?)\n");
    return 1;
  }

  print_windows(result.series, "fleetcampaign.round_us");
  print_neighbours(result.series, result.metrics);
  print_delivery_totals(result.metrics);

  if (!opt.json_out.empty()) {
    std::ofstream out(opt.json_out);
    out << result.series.to_json();
    std::printf("\nseries written to %s\n", opt.json_out.c_str());
  }
  if (!opt.csv_out.empty()) {
    util::CsvWriter csv(opt.csv_out);
    result.series.write_csv(csv);
    std::printf("series CSV written to %s\n", opt.csv_out.c_str());
  }
  return 0;
}
