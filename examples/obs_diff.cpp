// obs_diff: the metrics-diff regression gate. Compares two metrics JSON
// documents — bare obs::MetricsSnapshot dumps (trace_tool --metrics-out,
// bench_out/*_metrics.json), committed bench baselines (BENCH_*.json with
// "benchmarks"/"metrics" sections), or google-benchmark --benchmark_out
// files — metric by metric against per-kind relative tolerances, prints a
// pass/fail table and exits non-zero when the candidate regressed.
//
//   $ ./obs_diff BENCH_obs_baseline.json fresh_run.json
//   $ ./obs_diff --section comm_metrics --counter-tol 0.02 base.json new.json
//
// Exit codes: 0 = within tolerance, 1 = regression(s), 2 = usage error.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

using rups::util::JsonValue;

namespace {

struct Options {
  std::string baseline_path;
  std::string candidate_path;
  std::string section;          // dotted path to the metrics object
  double counter_tol = 0.25;    // two-sided relative
  double gauge_tol = 0.25;      // two-sided, relative with abs floor 1.0
  double mean_tol = 0.50;       // one-sided on histogram means
  double bench_tol = 0.50;      // one-sided on benchmark cpu times
  double label_tol = -1.0;      // family cells ("name{...}"); <0 = inherit
  double series_tol = 0.25;     // series columns, per-column mean
  double series_timing_tol = 1.0;  // one-sided, p50/p95/p99 series columns
  bool gauge_one_sided = false;  // only increases beyond gauge_tol fail
  bool series_one_sided = false;  // series fail only on increases
  bool skip_counters = false;
  bool skip_gauges = false;
  bool skip_histograms = false;
  bool skip_benchmarks = false;
  bool skip_series = false;
  bool require_all = false;     // metrics missing from candidate fail
  std::vector<std::string> ignore;  // name substrings to exclude
  /// Per-label tolerance tiers: family cells whose name contains the
  /// substring use this tolerance instead (first match wins).
  std::vector<std::pair<std::string, double>> label_tiers;

  /// Tolerance for one scalar metric: label tiers, then the family-cell
  /// override, then the per-kind default.
  [[nodiscard]] double tol_for(const std::string& name,
                               double kind_default) const {
    const bool labeled = name.find('{') != std::string::npos;
    if (labeled) {
      for (const auto& [substr, tol] : label_tiers) {
        if (name.find(substr) != std::string::npos) return tol;
      }
      if (label_tol >= 0.0) return label_tol;
    }
    return kind_default;
  }
};

void print_help() {
  std::printf(
      "usage: obs_diff [flags] <baseline.json> <candidate.json>\n"
      "\n"
      "Compares two metrics JSON files and fails on out-of-tolerance\n"
      "differences. Accepted inputs: obs::MetricsSnapshot dumps, committed\n"
      "bench baselines (objects with \"metrics\"/\"benchmarks\" sections),\n"
      "and google-benchmark --benchmark_out files.\n"
      "\n"
      "flags:\n"
      "  --section PATH      read the metrics object at this dotted path\n"
      "                      when a file has it (e.g. comm_metrics); files\n"
      "                      without the path fall back to the default:\n"
      "                      the document itself, or its \"metrics\" member\n"
      "  --counter-tol F     relative tolerance for counters, two-sided\n"
      "                      (default 0.25)\n"
      "  --gauge-tol F       tolerance for gauges: |diff| <= F*max(|base|,1)\n"
      "                      (default 0.25)\n"
      "  --gauge-one-sided   gauges fail only on INCREASES beyond the\n"
      "                      tolerance (for timing-style gauges where\n"
      "                      smaller is better)\n"
      "  --mean-tol F        one-sided tolerance for histogram-mean\n"
      "                      regressions (default 0.5)\n"
      "  --bench-tol F       one-sided tolerance for benchmark cpu-time\n"
      "                      regressions (default 0.5)\n"
      "  --label-tol F       tolerance override for labeled family cells\n"
      "                      (names like \"family{key=\\\"v\\\"}\"); default:\n"
      "                      inherit the per-kind tolerance\n"
      "  --label-tier S=F    family cells whose name contains S use\n"
      "                      tolerance F (repeatable; first match wins;\n"
      "                      beats --label-tol)\n"
      "  --series-tol F      per-column tolerance for time-series sections,\n"
      "                      compared on the column mean (default 0.25)\n"
      "  --series-timing-tol F\n"
      "                      one-sided tolerance for p50/p95/p99 series\n"
      "                      columns (wall-clock quantiles; default 1.0)\n"
      "  --series-one-sided  non-timing series columns fail only on\n"
      "                      INCREASES beyond the tolerance\n"
      "  --skip-counters     do not compare counters\n"
      "  --skip-gauges       do not compare gauges\n"
      "  --skip-histograms   do not compare histogram means\n"
      "  --skip-benchmarks   do not compare benchmark timings\n"
      "  --skip-series       do not compare time-series sections\n"
      "  --ignore SUBSTR     exclude metrics whose name contains SUBSTR\n"
      "                      (repeatable)\n"
      "  --require-all       baseline metrics missing from the candidate\n"
      "                      count as failures (default: skipped)\n"
      "  --help              this text\n");
}

std::optional<JsonValue> load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return JsonValue::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return std::nullopt;
  }
}

bool ignored(const Options& opt, const std::string& name) {
  for (const std::string& s : opt.ignore) {
    if (name.find(s) != std::string::npos) return true;
  }
  return false;
}

/// The metrics object inside a document: the --section path when that
/// path exists in this document, else the document itself when it already
/// looks like a snapshot, else its "metrics" member. The per-file fallback
/// lets a sectioned baseline bundle be diffed against a bare snapshot dump.
const JsonValue* metrics_of(const JsonValue& doc, const Options& opt) {
  if (!opt.section.empty()) {
    if (const JsonValue* v = doc.find_path(opt.section)) return v;
  }
  if (doc.find("counters") != nullptr) return &doc;
  return doc.find("metrics");
}

/// name -> value maps for one snapshot section ("counters"/"gauges").
std::map<std::string, double> scalar_section(const JsonValue* metrics,
                                             const char* section) {
  std::map<std::string, double> out;
  if (metrics == nullptr) return out;
  const JsonValue* arr = metrics->find(section);
  if (arr == nullptr || !arr->is_array()) return out;
  for (const JsonValue& entry : arr->as_array()) {
    const JsonValue* name = entry.find("name");
    const JsonValue* value = entry.find("value");
    if (name != nullptr && name->is_string() && value != nullptr &&
        value->is_number()) {
      out[name->as_string()] = value->as_number();
    }
  }
  return out;
}

/// name -> mean for the histograms section.
std::map<std::string, double> histogram_means(const JsonValue* metrics) {
  std::map<std::string, double> out;
  if (metrics == nullptr) return out;
  const JsonValue* arr = metrics->find("histograms");
  if (arr == nullptr || !arr->is_array()) return out;
  for (const JsonValue& entry : arr->as_array()) {
    const JsonValue* name = entry.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const double count = entry.number_or("count", 0.0);
    const double sum = entry.number_or("sum", 0.0);
    out[name->as_string()] = count > 0.0 ? sum / count : 0.0;
  }
  return out;
}

/// The time-series object inside a document: the document itself when it
/// is a bare TimeSeriesData dump (trace_tool --series-out), else a
/// "series" member (of the --section object when given, of the document
/// otherwise — the shape of committed telemetry baseline sections).
const JsonValue* series_of(const JsonValue& doc, const Options& opt) {
  if (!opt.section.empty()) {
    if (const JsonValue* v = doc.find_path(opt.section)) {
      if (const JsonValue* s = v->find("series")) return s;
      if (v->find("window_end_s") != nullptr) return v;
    }
  }
  if (doc.find("window_end_s") != nullptr) return &doc;
  return doc.find("series");
}

/// "name#kind" -> mean over the column's windows. Window boundaries are
/// sim-time-deterministic, so the column mean is the stable scalar to
/// regress on.
std::map<std::string, double> series_columns(const JsonValue* series) {
  std::map<std::string, double> out;
  if (series == nullptr) return out;
  const JsonValue* cols = series->find("columns");
  if (cols == nullptr || !cols->is_array()) return out;
  for (const JsonValue& col : cols->as_array()) {
    const JsonValue* values = col.find("values");
    if (values == nullptr || !values->is_array()) continue;
    double sum = 0.0;
    for (const JsonValue& v : values->as_array()) sum += v.as_number();
    const std::size_t n = values->as_array().size();
    out[col.string_or("name", "") + "#" + col.string_or("kind", "")] =
        n == 0 ? 0.0 : sum / static_cast<double>(n);
  }
  return out;
}

/// Benchmark cpu time in ns: committed baselines store cpu_time_ns,
/// google-benchmark stores cpu_time + time_unit.
std::map<std::string, double> benchmark_times(const JsonValue& doc) {
  std::map<std::string, double> out;
  const JsonValue* arr = doc.find("benchmarks");
  if (arr == nullptr || !arr->is_array()) return out;
  for (const JsonValue& entry : arr->as_array()) {
    const JsonValue* name = entry.find("name");
    if (name == nullptr || !name->is_string()) continue;
    double ns = entry.number_or("cpu_time_ns", std::nan(""));
    if (std::isnan(ns)) {
      const double t = entry.number_or("cpu_time", std::nan(""));
      if (std::isnan(t)) continue;
      const std::string unit = entry.string_or("time_unit", "ns");
      double scale = 1.0;
      if (unit == "us") scale = 1e3;
      else if (unit == "ms") scale = 1e6;
      else if (unit == "s") scale = 1e9;
      ns = t * scale;
    }
    out[name->as_string()] = ns;
  }
  return out;
}

class DiffTable {
 public:
  explicit DiffTable(const Options& opt) : opt_(opt) {}

  /// one_sided: only candidate > baseline counts as a regression.
  void compare(const char* kind, const std::string& name, double base,
               double cand, double tol, bool one_sided) {
    if (ignored(opt_, name)) return;
    double delta;
    if (base == 0.0 && cand == 0.0) {
      delta = 0.0;
    } else if (base == 0.0) {
      delta = std::numeric_limits<double>::infinity();
    } else {
      delta = (cand - base) / std::abs(base);
    }
    const bool fail = one_sided ? delta > tol : std::abs(delta) > tol;
    row(kind, name, base, cand, delta, tol, fail);
  }

  /// Gauges: relative with an absolute floor of 1.0 so near-zero gauges
  /// (e.g. an availability of 0.0 vs 0.01) do not explode the ratio. With
  /// --gauge-one-sided only increases count (timing-style gauges).
  void compare_gauge(const std::string& name, double base, double cand,
                     double tol) {
    if (ignored(opt_, name)) return;
    const double diff = cand - base;
    const double allowed = tol * std::max(std::abs(base), 1.0);
    const double delta = base != 0.0 ? diff / std::abs(base) : diff;
    const bool fail =
        opt_.gauge_one_sided ? diff > allowed : std::abs(diff) > allowed;
    row("gauge", name, base, cand, delta, tol, fail);
  }

  void missing(const char* kind, const std::string& name, double base) {
    if (ignored(opt_, name)) return;
    if (!opt_.require_all) return;
    std::printf("FAIL  %-9s %-36s %14.6g %14s  missing from candidate\n",
                kind, name.c_str(), base, "-");
    ++failures_;
    ++compared_;
  }

  [[nodiscard]] int failures() const noexcept { return failures_; }
  [[nodiscard]] int compared() const noexcept { return compared_; }

 private:
  void row(const char* kind, const std::string& name, double base,
           double cand, double delta, double tol, bool fail) {
    ++compared_;
    if (fail) ++failures_;
    // Only print failing rows plus a compact OK line per kind? No —
    // the full table is the point: one glance shows what moved.
    std::printf("%s  %-9s %-36s %14.6g %14.6g %+8.1f%% (tol %.0f%%)\n",
                fail ? "FAIL" : " ok ", kind, name.c_str(), base, cand,
                delta * 100.0, tol * 100.0);
  }

  const Options& opt_;
  int failures_ = 0;
  int compared_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](double* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        return false;
      }
      *out = std::strtod(argv[++i], nullptr);
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--section") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --section requires a value\n");
        return 2;
      }
      opt.section = argv[++i];
    } else if (arg == "--ignore") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --ignore requires a value\n");
        return 2;
      }
      opt.ignore.emplace_back(argv[++i]);
    } else if (arg == "--counter-tol") {
      if (!next_value(&opt.counter_tol)) return 2;
    } else if (arg == "--gauge-tol") {
      if (!next_value(&opt.gauge_tol)) return 2;
    } else if (arg == "--mean-tol") {
      if (!next_value(&opt.mean_tol)) return 2;
    } else if (arg == "--bench-tol") {
      if (!next_value(&opt.bench_tol)) return 2;
    } else if (arg == "--label-tol") {
      if (!next_value(&opt.label_tol)) return 2;
    } else if (arg == "--series-tol") {
      if (!next_value(&opt.series_tol)) return 2;
    } else if (arg == "--series-timing-tol") {
      if (!next_value(&opt.series_timing_tol)) return 2;
    } else if (arg == "--label-tier") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --label-tier requires SUBSTR=F\n");
        return 2;
      }
      const std::string tier = argv[++i];
      const std::size_t eq = tier.rfind('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr,
                     "error: --label-tier expects SUBSTR=F, got '%s'\n",
                     tier.c_str());
        return 2;
      }
      opt.label_tiers.emplace_back(tier.substr(0, eq),
                                   std::strtod(tier.c_str() + eq + 1,
                                               nullptr));
    } else if (arg == "--gauge-one-sided") {
      opt.gauge_one_sided = true;
    } else if (arg == "--series-one-sided") {
      opt.series_one_sided = true;
    } else if (arg == "--skip-counters") {
      opt.skip_counters = true;
    } else if (arg == "--skip-gauges") {
      opt.skip_gauges = true;
    } else if (arg == "--skip-histograms") {
      opt.skip_histograms = true;
    } else if (arg == "--skip-benchmarks") {
      opt.skip_benchmarks = true;
    } else if (arg == "--skip-series") {
      opt.skip_series = true;
    } else if (arg == "--require-all") {
      opt.require_all = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "error: unknown flag %s (see obs_diff --help)\n",
                   arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "error: expected <baseline.json> <candidate.json> "
                 "(see obs_diff --help)\n");
    return 2;
  }
  opt.baseline_path = positional[0];
  opt.candidate_path = positional[1];

  const auto baseline = load_json(opt.baseline_path);
  const auto candidate = load_json(opt.candidate_path);
  if (!baseline.has_value() || !candidate.has_value()) return 2;
  if (!opt.section.empty() && baseline->find_path(opt.section) == nullptr &&
      candidate->find_path(opt.section) == nullptr) {
    std::fprintf(stderr, "error: section '%s' not found in either input\n",
                 opt.section.c_str());
    return 2;
  }

  std::printf("obs_diff: %s vs %s\n", opt.baseline_path.c_str(),
              opt.candidate_path.c_str());

  DiffTable table(opt);
  const JsonValue* base_metrics = metrics_of(*baseline, opt);
  const JsonValue* cand_metrics = metrics_of(*candidate, opt);

  if (!opt.skip_counters) {
    const auto base = scalar_section(base_metrics, "counters");
    const auto cand = scalar_section(cand_metrics, "counters");
    for (const auto& [name, value] : base) {
      const auto it = cand.find(name);
      if (it == cand.end()) {
        table.missing("counter", name, value);
      } else {
        table.compare("counter", name, value, it->second,
                      opt.tol_for(name, opt.counter_tol),
                      /*one_sided=*/false);
      }
    }
  }
  if (!opt.skip_gauges) {
    const auto base = scalar_section(base_metrics, "gauges");
    const auto cand = scalar_section(cand_metrics, "gauges");
    for (const auto& [name, value] : base) {
      const auto it = cand.find(name);
      if (it == cand.end()) {
        table.missing("gauge", name, value);
      } else {
        table.compare_gauge(name, value, it->second,
                            opt.tol_for(name, opt.gauge_tol));
      }
    }
  }
  if (!opt.skip_histograms) {
    const auto base = histogram_means(base_metrics);
    const auto cand = histogram_means(cand_metrics);
    for (const auto& [name, value] : base) {
      const auto it = cand.find(name);
      if (it == cand.end()) {
        table.missing("hist_mean", name, value);
      } else {
        table.compare("hist_mean", name, value, it->second,
                      opt.tol_for(name, opt.mean_tol),
                      /*one_sided=*/true);
      }
    }
  }
  if (!opt.skip_benchmarks) {
    const auto base = benchmark_times(*baseline);
    const auto cand = benchmark_times(*candidate);
    for (const auto& [name, value] : base) {
      const auto it = cand.find(name);
      if (it == cand.end()) {
        table.missing("bench_ns", name, value);
      } else {
        table.compare("bench_ns", name, value, it->second, opt.bench_tol,
                      /*one_sided=*/true);
      }
    }
  }
  if (!opt.skip_series) {
    const auto base = series_columns(series_of(*baseline, opt));
    const auto cand = series_columns(series_of(*candidate, opt));
    for (const auto& [key, value] : base) {
      // Wall-clock quantile columns regress one-sided against the looser
      // timing tolerance; sim-time-deterministic kinds (rate, count, last,
      // staleness) use --series-tol.
      const std::string kind = key.substr(key.rfind('#') + 1);
      const bool timing = kind == "p50" || kind == "p95" || kind == "p99";
      const auto it = cand.find(key);
      if (it == cand.end()) {
        table.missing("series", key, value);
      } else if (timing) {
        table.compare("series", key, value, it->second, opt.series_timing_tol,
                      /*one_sided=*/true);
      } else {
        table.compare("series", key, value, it->second,
                      opt.tol_for(key, opt.series_tol), opt.series_one_sided);
      }
    }
  }

  if (table.compared() == 0) {
    std::fprintf(stderr,
                 "error: nothing to compare (no overlapping metrics — wrong "
                 "--section or input shape?)\n");
    return 2;
  }
  std::printf("obs_diff: %d compared, %d regression(s) -> %s\n",
              table.compared(), table.failures(),
              table.failures() == 0 ? "PASS" : "FAIL");
  return table.failures() == 0 ? 0 : 1;
}
