# Empty dependencies file for gsm_survey.
# This may be replaced when dependencies are built.
