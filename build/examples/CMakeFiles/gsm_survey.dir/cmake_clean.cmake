file(REMOVE_RECURSE
  "CMakeFiles/gsm_survey.dir/gsm_survey.cpp.o"
  "CMakeFiles/gsm_survey.dir/gsm_survey.cpp.o.d"
  "gsm_survey"
  "gsm_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsm_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
