# Empty compiler generated dependencies file for pedestrian.
# This may be replaced when dependencies are built.
