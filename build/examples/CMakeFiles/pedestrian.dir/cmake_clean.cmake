file(REMOVE_RECURSE
  "CMakeFiles/pedestrian.dir/pedestrian.cpp.o"
  "CMakeFiles/pedestrian.dir/pedestrian.cpp.o.d"
  "pedestrian"
  "pedestrian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pedestrian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
