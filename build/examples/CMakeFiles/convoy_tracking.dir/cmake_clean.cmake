file(REMOVE_RECURSE
  "CMakeFiles/convoy_tracking.dir/convoy_tracking.cpp.o"
  "CMakeFiles/convoy_tracking.dir/convoy_tracking.cpp.o.d"
  "convoy_tracking"
  "convoy_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convoy_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
