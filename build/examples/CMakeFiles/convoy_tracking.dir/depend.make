# Empty dependencies file for convoy_tracking.
# This may be replaced when dependencies are built.
