# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_convoy_tracking "/root/repo/build/examples/convoy_tracking")
set_tests_properties(example_convoy_tracking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rush_hour "/root/repo/build/examples/rush_hour")
set_tests_properties(example_rush_hour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gsm_survey "/root/repo/build/examples/gsm_survey" "2016" "12")
set_tests_properties(example_gsm_survey PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pedestrian "/root/repo/build/examples/pedestrian")
set_tests_properties(example_pedestrian PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool "/root/repo/build/examples/trace_tool" "demo")
set_tests_properties(example_trace_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
