# Empty dependencies file for test_hash_noise.
# This may be replaced when dependencies are built.
