file(REMOVE_RECURSE
  "CMakeFiles/test_hash_noise.dir/test_hash_noise.cpp.o"
  "CMakeFiles/test_hash_noise.dir/test_hash_noise.cpp.o.d"
  "test_hash_noise"
  "test_hash_noise.pdb"
  "test_hash_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
