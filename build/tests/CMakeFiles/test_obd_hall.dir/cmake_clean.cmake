file(REMOVE_RECURSE
  "CMakeFiles/test_obd_hall.dir/test_obd_hall.cpp.o"
  "CMakeFiles/test_obd_hall.dir/test_obd_hall.cpp.o.d"
  "test_obd_hall"
  "test_obd_hall.pdb"
  "test_obd_hall[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obd_hall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
