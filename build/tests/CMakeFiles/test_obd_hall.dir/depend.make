# Empty dependencies file for test_obd_hall.
# This may be replaced when dependencies are built.
