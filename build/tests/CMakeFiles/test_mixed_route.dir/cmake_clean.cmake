file(REMOVE_RECURSE
  "CMakeFiles/test_mixed_route.dir/test_mixed_route.cpp.o"
  "CMakeFiles/test_mixed_route.dir/test_mixed_route.cpp.o.d"
  "test_mixed_route"
  "test_mixed_route.pdb"
  "test_mixed_route[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
