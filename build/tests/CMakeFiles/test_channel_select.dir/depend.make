# Empty dependencies file for test_channel_select.
# This may be replaced when dependencies are built.
