file(REMOVE_RECURSE
  "CMakeFiles/test_channel_select.dir/test_channel_select.cpp.o"
  "CMakeFiles/test_channel_select.dir/test_channel_select.cpp.o.d"
  "test_channel_select"
  "test_channel_select.pdb"
  "test_channel_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
