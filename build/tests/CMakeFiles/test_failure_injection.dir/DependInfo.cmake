
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/test_failure_injection.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_failure_injection.dir/test_failure_injection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rups_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/v2v/CMakeFiles/rups_v2v.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rups_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/rups_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/gsm/CMakeFiles/rups_gsm.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/rups_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/rups_road.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rups_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
