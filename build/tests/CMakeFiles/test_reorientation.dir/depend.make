# Empty dependencies file for test_reorientation.
# This may be replaced when dependencies are built.
