file(REMOVE_RECURSE
  "CMakeFiles/test_reorientation.dir/test_reorientation.cpp.o"
  "CMakeFiles/test_reorientation.dir/test_reorientation.cpp.o.d"
  "test_reorientation"
  "test_reorientation.pdb"
  "test_reorientation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reorientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
