# Empty dependencies file for test_channel_plan.
# This may be replaced when dependencies are built.
