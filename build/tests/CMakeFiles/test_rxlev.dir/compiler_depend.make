# Empty compiler generated dependencies file for test_rxlev.
# This may be replaced when dependencies are built.
