file(REMOVE_RECURSE
  "CMakeFiles/test_rxlev.dir/test_rxlev.cpp.o"
  "CMakeFiles/test_rxlev.dir/test_rxlev.cpp.o.d"
  "test_rxlev"
  "test_rxlev.pdb"
  "test_rxlev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rxlev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
