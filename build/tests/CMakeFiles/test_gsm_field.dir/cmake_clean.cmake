file(REMOVE_RECURSE
  "CMakeFiles/test_gsm_field.dir/test_gsm_field.cpp.o"
  "CMakeFiles/test_gsm_field.dir/test_gsm_field.cpp.o.d"
  "test_gsm_field"
  "test_gsm_field.pdb"
  "test_gsm_field[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gsm_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
