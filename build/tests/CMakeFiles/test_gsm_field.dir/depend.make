# Empty dependencies file for test_gsm_field.
# This may be replaced when dependencies are built.
