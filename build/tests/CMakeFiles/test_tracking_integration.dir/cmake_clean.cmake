file(REMOVE_RECURSE
  "CMakeFiles/test_tracking_integration.dir/test_tracking_integration.cpp.o"
  "CMakeFiles/test_tracking_integration.dir/test_tracking_integration.cpp.o.d"
  "test_tracking_integration"
  "test_tracking_integration.pdb"
  "test_tracking_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracking_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
