# Empty dependencies file for test_tracking_integration.
# This may be replaced when dependencies are built.
