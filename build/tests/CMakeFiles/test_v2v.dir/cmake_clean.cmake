file(REMOVE_RECURSE
  "CMakeFiles/test_v2v.dir/test_v2v.cpp.o"
  "CMakeFiles/test_v2v.dir/test_v2v.cpp.o.d"
  "test_v2v"
  "test_v2v.pdb"
  "test_v2v[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_v2v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
