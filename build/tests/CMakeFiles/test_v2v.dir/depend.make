# Empty dependencies file for test_v2v.
# This may be replaced when dependencies are built.
