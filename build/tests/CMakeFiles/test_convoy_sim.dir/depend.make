# Empty dependencies file for test_convoy_sim.
# This may be replaced when dependencies are built.
