file(REMOVE_RECURSE
  "CMakeFiles/test_convoy_sim.dir/test_convoy_sim.cpp.o"
  "CMakeFiles/test_convoy_sim.dir/test_convoy_sim.cpp.o.d"
  "test_convoy_sim"
  "test_convoy_sim.pdb"
  "test_convoy_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convoy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
