# Empty dependencies file for test_gsm_components.
# This may be replaced when dependencies are built.
