file(REMOVE_RECURSE
  "CMakeFiles/test_gsm_components.dir/test_gsm_components.cpp.o"
  "CMakeFiles/test_gsm_components.dir/test_gsm_components.cpp.o.d"
  "test_gsm_components"
  "test_gsm_components.pdb"
  "test_gsm_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gsm_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
