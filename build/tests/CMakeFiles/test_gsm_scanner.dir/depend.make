# Empty dependencies file for test_gsm_scanner.
# This may be replaced when dependencies are built.
