file(REMOVE_RECURSE
  "CMakeFiles/test_gsm_scanner.dir/test_gsm_scanner.cpp.o"
  "CMakeFiles/test_gsm_scanner.dir/test_gsm_scanner.cpp.o.d"
  "test_gsm_scanner"
  "test_gsm_scanner.pdb"
  "test_gsm_scanner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gsm_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
