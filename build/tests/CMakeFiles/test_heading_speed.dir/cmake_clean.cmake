file(REMOVE_RECURSE
  "CMakeFiles/test_heading_speed.dir/test_heading_speed.cpp.o"
  "CMakeFiles/test_heading_speed.dir/test_heading_speed.cpp.o.d"
  "test_heading_speed"
  "test_heading_speed.pdb"
  "test_heading_speed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heading_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
