# Empty compiler generated dependencies file for test_heading_speed.
# This may be replaced when dependencies are built.
