# Empty dependencies file for test_syn_seeker.
# This may be replaced when dependencies are built.
