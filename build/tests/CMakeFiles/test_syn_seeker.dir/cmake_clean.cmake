file(REMOVE_RECURSE
  "CMakeFiles/test_syn_seeker.dir/test_syn_seeker.cpp.o"
  "CMakeFiles/test_syn_seeker.dir/test_syn_seeker.cpp.o.d"
  "test_syn_seeker"
  "test_syn_seeker.pdb"
  "test_syn_seeker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syn_seeker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
