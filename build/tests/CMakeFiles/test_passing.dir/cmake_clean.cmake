file(REMOVE_RECURSE
  "CMakeFiles/test_passing.dir/test_passing.cpp.o"
  "CMakeFiles/test_passing.dir/test_passing.cpp.o.d"
  "test_passing"
  "test_passing.pdb"
  "test_passing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
