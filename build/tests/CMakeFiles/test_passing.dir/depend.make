# Empty dependencies file for test_passing.
# This may be replaced when dependencies are built.
