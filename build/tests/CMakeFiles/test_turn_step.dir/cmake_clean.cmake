file(REMOVE_RECURSE
  "CMakeFiles/test_turn_step.dir/test_turn_step.cpp.o"
  "CMakeFiles/test_turn_step.dir/test_turn_step.cpp.o.d"
  "test_turn_step"
  "test_turn_step.pdb"
  "test_turn_step[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turn_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
