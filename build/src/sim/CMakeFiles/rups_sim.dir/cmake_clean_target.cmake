file(REMOVE_RECURSE
  "librups_sim.a"
)
