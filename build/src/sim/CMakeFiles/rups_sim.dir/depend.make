# Empty dependencies file for rups_sim.
# This may be replaced when dependencies are built.
