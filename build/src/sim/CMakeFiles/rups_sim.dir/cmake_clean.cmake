file(REMOVE_RECURSE
  "CMakeFiles/rups_sim.dir/campaign.cpp.o"
  "CMakeFiles/rups_sim.dir/campaign.cpp.o.d"
  "CMakeFiles/rups_sim.dir/convoy_sim.cpp.o"
  "CMakeFiles/rups_sim.dir/convoy_sim.cpp.o.d"
  "CMakeFiles/rups_sim.dir/scenario.cpp.o"
  "CMakeFiles/rups_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/rups_sim.dir/survey.cpp.o"
  "CMakeFiles/rups_sim.dir/survey.cpp.o.d"
  "CMakeFiles/rups_sim.dir/trace.cpp.o"
  "CMakeFiles/rups_sim.dir/trace.cpp.o.d"
  "librups_sim.a"
  "librups_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rups_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
