file(REMOVE_RECURSE
  "librups_v2v.a"
)
