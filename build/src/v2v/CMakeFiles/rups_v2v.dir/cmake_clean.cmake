file(REMOVE_RECURSE
  "CMakeFiles/rups_v2v.dir/codec.cpp.o"
  "CMakeFiles/rups_v2v.dir/codec.cpp.o.d"
  "CMakeFiles/rups_v2v.dir/exchange.cpp.o"
  "CMakeFiles/rups_v2v.dir/exchange.cpp.o.d"
  "CMakeFiles/rups_v2v.dir/link.cpp.o"
  "CMakeFiles/rups_v2v.dir/link.cpp.o.d"
  "CMakeFiles/rups_v2v.dir/wsm.cpp.o"
  "CMakeFiles/rups_v2v.dir/wsm.cpp.o.d"
  "librups_v2v.a"
  "librups_v2v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rups_v2v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
