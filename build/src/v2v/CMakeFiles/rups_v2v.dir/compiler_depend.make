# Empty compiler generated dependencies file for rups_v2v.
# This may be replaced when dependencies are built.
