# CMake generated Testfile for 
# Source directory: /root/repo/src/v2v
# Build directory: /root/repo/build/src/v2v
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
