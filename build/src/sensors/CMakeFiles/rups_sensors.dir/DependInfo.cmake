
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/gps.cpp" "src/sensors/CMakeFiles/rups_sensors.dir/gps.cpp.o" "gcc" "src/sensors/CMakeFiles/rups_sensors.dir/gps.cpp.o.d"
  "/root/repo/src/sensors/gsm_scanner.cpp" "src/sensors/CMakeFiles/rups_sensors.dir/gsm_scanner.cpp.o" "gcc" "src/sensors/CMakeFiles/rups_sensors.dir/gsm_scanner.cpp.o.d"
  "/root/repo/src/sensors/hall.cpp" "src/sensors/CMakeFiles/rups_sensors.dir/hall.cpp.o" "gcc" "src/sensors/CMakeFiles/rups_sensors.dir/hall.cpp.o.d"
  "/root/repo/src/sensors/imu.cpp" "src/sensors/CMakeFiles/rups_sensors.dir/imu.cpp.o" "gcc" "src/sensors/CMakeFiles/rups_sensors.dir/imu.cpp.o.d"
  "/root/repo/src/sensors/obd.cpp" "src/sensors/CMakeFiles/rups_sensors.dir/obd.cpp.o" "gcc" "src/sensors/CMakeFiles/rups_sensors.dir/obd.cpp.o.d"
  "/root/repo/src/sensors/rangefinder.cpp" "src/sensors/CMakeFiles/rups_sensors.dir/rangefinder.cpp.o" "gcc" "src/sensors/CMakeFiles/rups_sensors.dir/rangefinder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rups_util.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/rups_road.dir/DependInfo.cmake"
  "/root/repo/build/src/gsm/CMakeFiles/rups_gsm.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/rups_vehicle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
