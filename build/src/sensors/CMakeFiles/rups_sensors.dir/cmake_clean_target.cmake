file(REMOVE_RECURSE
  "librups_sensors.a"
)
