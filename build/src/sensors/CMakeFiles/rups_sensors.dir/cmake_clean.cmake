file(REMOVE_RECURSE
  "CMakeFiles/rups_sensors.dir/gps.cpp.o"
  "CMakeFiles/rups_sensors.dir/gps.cpp.o.d"
  "CMakeFiles/rups_sensors.dir/gsm_scanner.cpp.o"
  "CMakeFiles/rups_sensors.dir/gsm_scanner.cpp.o.d"
  "CMakeFiles/rups_sensors.dir/hall.cpp.o"
  "CMakeFiles/rups_sensors.dir/hall.cpp.o.d"
  "CMakeFiles/rups_sensors.dir/imu.cpp.o"
  "CMakeFiles/rups_sensors.dir/imu.cpp.o.d"
  "CMakeFiles/rups_sensors.dir/obd.cpp.o"
  "CMakeFiles/rups_sensors.dir/obd.cpp.o.d"
  "CMakeFiles/rups_sensors.dir/rangefinder.cpp.o"
  "CMakeFiles/rups_sensors.dir/rangefinder.cpp.o.d"
  "librups_sensors.a"
  "librups_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rups_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
