# Empty compiler generated dependencies file for rups_sensors.
# This may be replaced when dependencies are built.
