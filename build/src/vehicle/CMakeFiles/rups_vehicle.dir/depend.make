# Empty dependencies file for rups_vehicle.
# This may be replaced when dependencies are built.
