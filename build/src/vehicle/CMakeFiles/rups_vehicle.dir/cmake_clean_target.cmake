file(REMOVE_RECURSE
  "librups_vehicle.a"
)
