file(REMOVE_RECURSE
  "CMakeFiles/rups_vehicle.dir/kinematics.cpp.o"
  "CMakeFiles/rups_vehicle.dir/kinematics.cpp.o.d"
  "CMakeFiles/rups_vehicle.dir/passing.cpp.o"
  "CMakeFiles/rups_vehicle.dir/passing.cpp.o.d"
  "CMakeFiles/rups_vehicle.dir/speed_controller.cpp.o"
  "CMakeFiles/rups_vehicle.dir/speed_controller.cpp.o.d"
  "CMakeFiles/rups_vehicle.dir/traffic.cpp.o"
  "CMakeFiles/rups_vehicle.dir/traffic.cpp.o.d"
  "librups_vehicle.a"
  "librups_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rups_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
