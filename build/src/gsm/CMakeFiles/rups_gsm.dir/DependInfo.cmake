
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsm/channel_plan.cpp" "src/gsm/CMakeFiles/rups_gsm.dir/channel_plan.cpp.o" "gcc" "src/gsm/CMakeFiles/rups_gsm.dir/channel_plan.cpp.o.d"
  "/root/repo/src/gsm/env_profile.cpp" "src/gsm/CMakeFiles/rups_gsm.dir/env_profile.cpp.o" "gcc" "src/gsm/CMakeFiles/rups_gsm.dir/env_profile.cpp.o.d"
  "/root/repo/src/gsm/gsm_field.cpp" "src/gsm/CMakeFiles/rups_gsm.dir/gsm_field.cpp.o" "gcc" "src/gsm/CMakeFiles/rups_gsm.dir/gsm_field.cpp.o.d"
  "/root/repo/src/gsm/path_loss.cpp" "src/gsm/CMakeFiles/rups_gsm.dir/path_loss.cpp.o" "gcc" "src/gsm/CMakeFiles/rups_gsm.dir/path_loss.cpp.o.d"
  "/root/repo/src/gsm/rxlev.cpp" "src/gsm/CMakeFiles/rups_gsm.dir/rxlev.cpp.o" "gcc" "src/gsm/CMakeFiles/rups_gsm.dir/rxlev.cpp.o.d"
  "/root/repo/src/gsm/temporal.cpp" "src/gsm/CMakeFiles/rups_gsm.dir/temporal.cpp.o" "gcc" "src/gsm/CMakeFiles/rups_gsm.dir/temporal.cpp.o.d"
  "/root/repo/src/gsm/towers.cpp" "src/gsm/CMakeFiles/rups_gsm.dir/towers.cpp.o" "gcc" "src/gsm/CMakeFiles/rups_gsm.dir/towers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rups_util.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/rups_road.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
