file(REMOVE_RECURSE
  "CMakeFiles/rups_gsm.dir/channel_plan.cpp.o"
  "CMakeFiles/rups_gsm.dir/channel_plan.cpp.o.d"
  "CMakeFiles/rups_gsm.dir/env_profile.cpp.o"
  "CMakeFiles/rups_gsm.dir/env_profile.cpp.o.d"
  "CMakeFiles/rups_gsm.dir/gsm_field.cpp.o"
  "CMakeFiles/rups_gsm.dir/gsm_field.cpp.o.d"
  "CMakeFiles/rups_gsm.dir/path_loss.cpp.o"
  "CMakeFiles/rups_gsm.dir/path_loss.cpp.o.d"
  "CMakeFiles/rups_gsm.dir/rxlev.cpp.o"
  "CMakeFiles/rups_gsm.dir/rxlev.cpp.o.d"
  "CMakeFiles/rups_gsm.dir/temporal.cpp.o"
  "CMakeFiles/rups_gsm.dir/temporal.cpp.o.d"
  "CMakeFiles/rups_gsm.dir/towers.cpp.o"
  "CMakeFiles/rups_gsm.dir/towers.cpp.o.d"
  "librups_gsm.a"
  "librups_gsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rups_gsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
