# Empty compiler generated dependencies file for rups_gsm.
# This may be replaced when dependencies are built.
