file(REMOVE_RECURSE
  "librups_gsm.a"
)
