file(REMOVE_RECURSE
  "librups_core.a"
)
