file(REMOVE_RECURSE
  "CMakeFiles/rups_core.dir/binder.cpp.o"
  "CMakeFiles/rups_core.dir/binder.cpp.o.d"
  "CMakeFiles/rups_core.dir/channel_select.cpp.o"
  "CMakeFiles/rups_core.dir/channel_select.cpp.o.d"
  "CMakeFiles/rups_core.dir/correlation.cpp.o"
  "CMakeFiles/rups_core.dir/correlation.cpp.o.d"
  "CMakeFiles/rups_core.dir/dead_reckoner.cpp.o"
  "CMakeFiles/rups_core.dir/dead_reckoner.cpp.o.d"
  "CMakeFiles/rups_core.dir/engine.cpp.o"
  "CMakeFiles/rups_core.dir/engine.cpp.o.d"
  "CMakeFiles/rups_core.dir/heading.cpp.o"
  "CMakeFiles/rups_core.dir/heading.cpp.o.d"
  "CMakeFiles/rups_core.dir/reorientation.cpp.o"
  "CMakeFiles/rups_core.dir/reorientation.cpp.o.d"
  "CMakeFiles/rups_core.dir/resolver.cpp.o"
  "CMakeFiles/rups_core.dir/resolver.cpp.o.d"
  "CMakeFiles/rups_core.dir/speed.cpp.o"
  "CMakeFiles/rups_core.dir/speed.cpp.o.d"
  "CMakeFiles/rups_core.dir/step_counter.cpp.o"
  "CMakeFiles/rups_core.dir/step_counter.cpp.o.d"
  "CMakeFiles/rups_core.dir/syn_seeker.cpp.o"
  "CMakeFiles/rups_core.dir/syn_seeker.cpp.o.d"
  "CMakeFiles/rups_core.dir/tracker.cpp.o"
  "CMakeFiles/rups_core.dir/tracker.cpp.o.d"
  "CMakeFiles/rups_core.dir/turn_detector.cpp.o"
  "CMakeFiles/rups_core.dir/turn_detector.cpp.o.d"
  "CMakeFiles/rups_core.dir/types.cpp.o"
  "CMakeFiles/rups_core.dir/types.cpp.o.d"
  "librups_core.a"
  "librups_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rups_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
