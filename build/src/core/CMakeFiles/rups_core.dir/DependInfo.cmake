
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/binder.cpp" "src/core/CMakeFiles/rups_core.dir/binder.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/binder.cpp.o.d"
  "/root/repo/src/core/channel_select.cpp" "src/core/CMakeFiles/rups_core.dir/channel_select.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/channel_select.cpp.o.d"
  "/root/repo/src/core/correlation.cpp" "src/core/CMakeFiles/rups_core.dir/correlation.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/correlation.cpp.o.d"
  "/root/repo/src/core/dead_reckoner.cpp" "src/core/CMakeFiles/rups_core.dir/dead_reckoner.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/dead_reckoner.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/rups_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/heading.cpp" "src/core/CMakeFiles/rups_core.dir/heading.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/heading.cpp.o.d"
  "/root/repo/src/core/reorientation.cpp" "src/core/CMakeFiles/rups_core.dir/reorientation.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/reorientation.cpp.o.d"
  "/root/repo/src/core/resolver.cpp" "src/core/CMakeFiles/rups_core.dir/resolver.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/resolver.cpp.o.d"
  "/root/repo/src/core/speed.cpp" "src/core/CMakeFiles/rups_core.dir/speed.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/speed.cpp.o.d"
  "/root/repo/src/core/step_counter.cpp" "src/core/CMakeFiles/rups_core.dir/step_counter.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/step_counter.cpp.o.d"
  "/root/repo/src/core/syn_seeker.cpp" "src/core/CMakeFiles/rups_core.dir/syn_seeker.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/syn_seeker.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/rups_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/tracker.cpp.o.d"
  "/root/repo/src/core/turn_detector.cpp" "src/core/CMakeFiles/rups_core.dir/turn_detector.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/turn_detector.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/rups_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/rups_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rups_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gsm/CMakeFiles/rups_gsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/rups_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/rups_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/rups_road.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
