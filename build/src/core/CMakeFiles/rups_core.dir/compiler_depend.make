# Empty compiler generated dependencies file for rups_core.
# This may be replaced when dependencies are built.
