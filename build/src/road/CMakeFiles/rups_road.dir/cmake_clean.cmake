file(REMOVE_RECURSE
  "CMakeFiles/rups_road.dir/environment.cpp.o"
  "CMakeFiles/rups_road.dir/environment.cpp.o.d"
  "CMakeFiles/rups_road.dir/road_network.cpp.o"
  "CMakeFiles/rups_road.dir/road_network.cpp.o.d"
  "CMakeFiles/rups_road.dir/route.cpp.o"
  "CMakeFiles/rups_road.dir/route.cpp.o.d"
  "CMakeFiles/rups_road.dir/route_builder.cpp.o"
  "CMakeFiles/rups_road.dir/route_builder.cpp.o.d"
  "librups_road.a"
  "librups_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rups_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
