file(REMOVE_RECURSE
  "librups_road.a"
)
