# Empty dependencies file for rups_road.
# This may be replaced when dependencies are built.
