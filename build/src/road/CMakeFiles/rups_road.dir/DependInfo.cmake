
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/road/environment.cpp" "src/road/CMakeFiles/rups_road.dir/environment.cpp.o" "gcc" "src/road/CMakeFiles/rups_road.dir/environment.cpp.o.d"
  "/root/repo/src/road/road_network.cpp" "src/road/CMakeFiles/rups_road.dir/road_network.cpp.o" "gcc" "src/road/CMakeFiles/rups_road.dir/road_network.cpp.o.d"
  "/root/repo/src/road/route.cpp" "src/road/CMakeFiles/rups_road.dir/route.cpp.o" "gcc" "src/road/CMakeFiles/rups_road.dir/route.cpp.o.d"
  "/root/repo/src/road/route_builder.cpp" "src/road/CMakeFiles/rups_road.dir/route_builder.cpp.o" "gcc" "src/road/CMakeFiles/rups_road.dir/route_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rups_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
