file(REMOVE_RECURSE
  "CMakeFiles/rups_util.dir/angle.cpp.o"
  "CMakeFiles/rups_util.dir/angle.cpp.o.d"
  "CMakeFiles/rups_util.dir/csv.cpp.o"
  "CMakeFiles/rups_util.dir/csv.cpp.o.d"
  "CMakeFiles/rups_util.dir/hash_noise.cpp.o"
  "CMakeFiles/rups_util.dir/hash_noise.cpp.o.d"
  "CMakeFiles/rups_util.dir/rng.cpp.o"
  "CMakeFiles/rups_util.dir/rng.cpp.o.d"
  "CMakeFiles/rups_util.dir/stats.cpp.o"
  "CMakeFiles/rups_util.dir/stats.cpp.o.d"
  "CMakeFiles/rups_util.dir/thread_pool.cpp.o"
  "CMakeFiles/rups_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/rups_util.dir/vec3.cpp.o"
  "CMakeFiles/rups_util.dir/vec3.cpp.o.d"
  "librups_util.a"
  "librups_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rups_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
