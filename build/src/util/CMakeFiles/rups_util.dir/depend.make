# Empty dependencies file for rups_util.
# This may be replaced when dependencies are built.
