file(REMOVE_RECURSE
  "librups_util.a"
)
