# Empty dependencies file for bench_fig10_aggregation.
# This may be replaced when dependencies are built.
