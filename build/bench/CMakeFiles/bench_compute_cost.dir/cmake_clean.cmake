file(REMOVE_RECURSE
  "CMakeFiles/bench_compute_cost.dir/bench_compute_cost.cpp.o"
  "CMakeFiles/bench_compute_cost.dir/bench_compute_cost.cpp.o.d"
  "bench_compute_cost"
  "bench_compute_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compute_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
