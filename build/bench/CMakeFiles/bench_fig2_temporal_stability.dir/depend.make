# Empty dependencies file for bench_fig2_temporal_stability.
# This may be replaced when dependencies are built.
