file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_field_scales.dir/bench_ablation_field_scales.cpp.o"
  "CMakeFiles/bench_ablation_field_scales.dir/bench_ablation_field_scales.cpp.o.d"
  "bench_ablation_field_scales"
  "bench_ablation_field_scales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_field_scales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
