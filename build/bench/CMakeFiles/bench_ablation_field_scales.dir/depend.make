# Empty dependencies file for bench_ablation_field_scales.
# This may be replaced when dependencies are built.
