# Empty compiler generated dependencies file for bench_fig9_radio_config.
# This may be replaced when dependencies are built.
