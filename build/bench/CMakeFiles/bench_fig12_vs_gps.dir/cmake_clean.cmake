file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_vs_gps.dir/bench_fig12_vs_gps.cpp.o"
  "CMakeFiles/bench_fig12_vs_gps.dir/bench_fig12_vs_gps.cpp.o.d"
  "bench_fig12_vs_gps"
  "bench_fig12_vs_gps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vs_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
