# Empty compiler generated dependencies file for bench_ablation_gap.
# This may be replaced when dependencies are built.
