# Empty dependencies file for bench_fig11_environments.
# This may be replaced when dependencies are built.
