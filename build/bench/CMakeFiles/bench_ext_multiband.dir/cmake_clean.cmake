file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiband.dir/bench_ext_multiband.cpp.o"
  "CMakeFiles/bench_ext_multiband.dir/bench_ext_multiband.cpp.o.d"
  "bench_ext_multiband"
  "bench_ext_multiband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
