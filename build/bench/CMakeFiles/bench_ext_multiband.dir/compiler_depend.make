# Empty compiler generated dependencies file for bench_ext_multiband.
# This may be replaced when dependencies are built.
