file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_uniqueness.dir/bench_fig3_uniqueness.cpp.o"
  "CMakeFiles/bench_fig3_uniqueness.dir/bench_fig3_uniqueness.cpp.o.d"
  "bench_fig3_uniqueness"
  "bench_fig3_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
