# Empty dependencies file for bench_fig3_uniqueness.
# This may be replaced when dependencies are built.
