file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interpolation.dir/bench_ablation_interpolation.cpp.o"
  "CMakeFiles/bench_ablation_interpolation.dir/bench_ablation_interpolation.cpp.o.d"
  "bench_ablation_interpolation"
  "bench_ablation_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
