# Empty compiler generated dependencies file for bench_ablation_interpolation.
# This may be replaced when dependencies are built.
