#!/usr/bin/env bash
# CLI contract test for trace_tool and obs_diff:
#  - --help exits 0 and documents the modes/flags,
#  - unknown flags exit 2 and NAME the offending flag,
#  - obs_diff passes on identical inputs and fails (exit 1) on a
#    deliberate 2x slowdown fixture — the regression-gate acceptance case.
#
# Usage: test_cli_flags.sh <trace_tool> <obs_diff>
set -u

trace_tool="${1:?usage: test_cli_flags.sh <trace_tool> <obs_diff>}"
obs_diff="${2:?usage: test_cli_flags.sh <trace_tool> <obs_diff>}"

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fail=0

check() {
  local desc="$1"
  local want_rc="$2"
  shift 2
  local out rc
  out=$("$@" 2>&1)
  rc=$?
  if [[ $rc -ne $want_rc ]]; then
    echo "FAIL: $desc — expected exit $want_rc, got $rc"
    echo "$out" | head -5
    fail=1
  else
    echo "ok: $desc"
  fi
  last_output="$out"
}

expect_in_output() {
  local desc="$1"
  local needle="$2"
  if [[ "$last_output" != *"$needle"* ]]; then
    echo "FAIL: $desc — output does not mention '$needle'"
    echo "$last_output" | head -5
    fail=1
  else
    echo "ok: $desc"
  fi
}

# ---- trace_tool ----
check "trace_tool --help exits 0" 0 "$trace_tool" --help
expect_in_output "help lists campaign mode" "campaign"
expect_in_output "help lists record mode" "record"
expect_in_output "help lists --metrics-out" "--metrics-out"
expect_in_output "help lists --trace-out" "--trace-out"
expect_in_output "help lists --profile-out" "--profile-out"
expect_in_output "help lists --serve" "--serve"

check "trace_tool unknown flag exits 2" 2 "$trace_tool" demo --frobnicate
expect_in_output "error names the flag" "--frobnicate"

# --precision: documented, validated, and functional at each width (a tiny
# quantized campaign must exit clean — same contract as the float default).
expect_help() { last_output=$("$trace_tool" --help 2>&1); }
expect_help
expect_in_output "help lists --precision" "--precision"
expect_in_output "help lists the int16 precision" "int16"
check "trace_tool --precision without value exits 2" 2 \
  "$trace_tool" campaign 1 --precision
expect_in_output "error names the flag" "--precision"
check "trace_tool --precision rejects a bad value (exit 2)" 2 \
  "$trace_tool" campaign 1 --precision float64
expect_in_output "error names the bad precision" "float64"
check "trace_tool campaign --precision int16 exits 0" 0 \
  "$trace_tool" campaign 2 --precision int16
check "trace_tool campaign --precision int8 exits 0" 0 \
  "$trace_tool" campaign 2 --precision int8
check "trace_tool campaign --precision float32 exits 0" 0 \
  "$trace_tool" campaign 2 --precision float32

check "trace_tool --metrics-out without value exits 2" 2 \
  "$trace_tool" demo --metrics-out
check "trace_tool --profile-out without value exits 2" 2 \
  "$trace_tool" demo --profile-out
check "trace_tool --serve without port exits 2" 2 "$trace_tool" demo --serve
check "trace_tool --serve rejects a bad port (exit 2)" 2 \
  "$trace_tool" demo --serve 70000
expect_in_output "error names the bad port" "70000"

# Functional: a short campaign with the sampling profiler running and the
# /metrics exporter on an ephemeral port must exit clean and leave the
# folded-stack artefact behind (it may be empty if no tick landed in a
# span, so only existence is asserted).
check "trace_tool campaign --profile-out --serve 0 exits 0" 0 \
  "$trace_tool" campaign 3 --profile-out "$work/prof.folded" --serve 0
expect_in_output "announces the exporter endpoint" "serving /metrics"
expect_in_output "reports the profile artefact" "profile written to"
if [[ ! -e "$work/prof.folded" ]]; then
  echo "FAIL: campaign --profile-out did not create prof.folded"
  fail=1
else
  echo "ok: campaign --profile-out created the folded-stack file"
fi

# ---- obs_diff ----
check "obs_diff --help exits 0" 0 "$obs_diff" --help
expect_in_output "help lists --section" "--section"
expect_in_output "help lists --counter-tol" "--counter-tol"
expect_in_output "help lists --bench-tol" "--bench-tol"

check "obs_diff unknown flag exits 2" 2 "$obs_diff" --wibble a.json b.json
expect_in_output "error names the flag" "--wibble"

check "obs_diff without inputs exits 2" 2 "$obs_diff"
check "obs_diff with missing file exits 2" 2 \
  "$obs_diff" "$work/nope.json" "$work/nope2.json"

# Identical snapshots: exit 0.
cat > "$work/base.json" <<'JSON'
{
  "counters": [{"name": "syn.seeks", "value": 100}],
  "gauges": [{"name": "campaign.last_availability", "value": 0.9}],
  "histograms": [{"name": "syn.seek_us", "count": 10, "sum": 500.0,
                  "min": 10.0, "max": 90.0,
                  "bounds": [100.0], "buckets": [10, 0]}],
  "benchmarks": [{"name": "BM_SynSearch", "cpu_time_ns": 1000000.0}]
}
JSON
cp "$work/base.json" "$work/same.json"
check "obs_diff identical inputs exits 0" 0 \
  "$obs_diff" "$work/base.json" "$work/same.json"

# Deliberate 2x slowdown of every timed stage: must trip the gate.
cat > "$work/slow.json" <<'JSON'
{
  "counters": [{"name": "syn.seeks", "value": 100}],
  "gauges": [{"name": "campaign.last_availability", "value": 0.9}],
  "histograms": [{"name": "syn.seek_us", "count": 10, "sum": 1000.0,
                  "min": 20.0, "max": 180.0,
                  "bounds": [100.0], "buckets": [9, 1]}],
  "benchmarks": [{"name": "BM_SynSearch", "cpu_time_ns": 2000000.0}]
}
JSON
check "obs_diff flags a 2x slowdown (exit 1)" 1 \
  "$obs_diff" "$work/base.json" "$work/slow.json"
expect_in_output "slowdown verdict is FAIL" "FAIL"

# The same 2x candidate passes when benchmarks/histograms are excluded —
# the counters did not move.
check "obs_diff --skip-histograms --skip-benchmarks passes" 0 \
  "$obs_diff" --skip-histograms --skip-benchmarks \
  "$work/base.json" "$work/slow.json"

# --section falls back per file; a bogus section in both inputs errors.
check "obs_diff bogus --section exits 2" 2 \
  "$obs_diff" --section no_such_section_anywhere \
  "$work/base.json" "$work/same.json"

if [[ $fail -ne 0 ]]; then
  echo "cli flags test: FAIL"
  exit 1
fi
echo "cli flags test: PASS"
exit 0
