#!/usr/bin/env bash
# Bench regression gate: run the comm, compute and fleet benches in quick
# mode and diff the results against the committed baseline with obs_diff.
# Three passes with very different tolerances:
#
#  1. bench_comm_cost is fixed-size and seeded, so its metric COUNTERS are
#     deterministic — diffed tightly (2%). Any drift means the byte path,
#     framing or cost model actually changed.
#  2. bench_compute_cost timings are machine- and load-dependent (this
#     container has 1 CPU and ±10-25% noise), so cpu times are diffed
#     one-sided with a 100% tolerance: only a >2x slowdown fails. Its
#     counters are iteration-adaptive (google-benchmark picks iteration
#     counts) and are NOT compared.
#  3. bench_fleet_scaling replays a fixed synthetic fleet (rounds and
#     vehicle counts are hard-coded, RUPS_BENCH_SCALE is ignored by its
#     sweep), so its cache/batch COUNTERS are deterministic — diffed at 2%
#     like the comm pass. The binary itself also exits non-zero when the
#     warm-vs-cold results diverge or the cache stops hitting.
#
# Usage:
#   bench_regression.sh <bench_compute_cost> <bench_comm_cost> \
#                       <bench_fleet_scaling> <obs_diff> <baseline.json> \
#                       <workdir>
set -eu

if [[ $# -ne 6 ]]; then
  echo "usage: bench_regression.sh <bench_compute_cost> <bench_comm_cost>" \
       "<bench_fleet_scaling> <obs_diff> <baseline.json> <workdir>" >&2
  exit 2
fi

compute_bin=$(realpath "$1")
comm_bin=$(realpath "$2")
fleet_bin=$(realpath "$3")
obs_diff_bin=$(realpath "$4")
baseline=$(realpath "$5")
workdir="$6"

mkdir -p "$workdir"
workdir=$(realpath "$workdir")

echo "== pass 1/3: comm-cost counters (deterministic, tight) =="
comm_dir="$workdir/comm"
rm -rf "$comm_dir"
mkdir -p "$comm_dir"
(cd "$comm_dir" && "$comm_bin" > bench_comm_cost.log)
"$obs_diff_bin" --section comm_metrics \
  --counter-tol 0.02 --skip-histograms --skip-benchmarks \
  "$baseline" "$comm_dir/bench_out/comm_cost_metrics.json"

echo ""
echo "== pass 2/3: compute-cost timings (noisy, one-sided 100%) =="
compute_dir="$workdir/compute"
rm -rf "$compute_dir"
mkdir -p "$compute_dir"
(cd "$compute_dir" && RUPS_BENCH_SCALE=0.3 "$compute_bin" \
    --benchmark_min_time=0.05 \
    --benchmark_out="$compute_dir/compute_bench.json" \
    --benchmark_out_format=json > bench_compute_cost.log)
"$obs_diff_bin" \
  --skip-counters --skip-gauges --skip-histograms --bench-tol 1.0 \
  "$baseline" "$compute_dir/compute_bench.json"

echo ""
echo "== pass 3/3: fleet cache/batch counters (deterministic, tight) =="
fleet_dir="$workdir/fleet"
rm -rf "$fleet_dir"
mkdir -p "$fleet_dir"
(cd "$fleet_dir" && "$fleet_bin" > bench_fleet_scaling.log)
"$obs_diff_bin" --section fleet_metrics \
  --counter-tol 0.02 --skip-histograms --skip-benchmarks \
  "$baseline" "$fleet_dir/bench_out/fleet_scaling_metrics.json"

echo ""
echo "bench regression gate: PASS"
