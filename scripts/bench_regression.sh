#!/usr/bin/env bash
# Bench regression gate: run the comm, compute and fleet benches in quick
# mode and diff the results against the committed baseline with obs_diff.
# Three passes with very different tolerances:
#
#  1. bench_comm_cost is fixed-size and seeded, so its metric COUNTERS are
#     deterministic — diffed tightly (2%). Any drift means the byte path,
#     framing or cost model actually changed.
#  2. bench_compute_cost timings are machine- and load-dependent (this
#     container has 1 CPU and ±10-25% noise), so cpu times are diffed
#     one-sided with a 100% tolerance: only a >2x slowdown fails. Its
#     counters are iteration-adaptive (google-benchmark picks iteration
#     counts) and are NOT compared.
#  3. bench_fleet_scaling replays a fixed synthetic fleet (rounds and
#     vehicle counts are hard-coded, RUPS_BENCH_SCALE is ignored by its
#     sweep), so its cache/batch COUNTERS are deterministic — diffed at 2%
#     like the comm pass. The binary itself also exits non-zero when the
#     warm-vs-cold results diverge or the cache stops hitting.
#  4. bench_syn_kernel: sweep-shape COUNTERS are pure functions of the
#     registered grid — diffed at 2% (catches accidental sweep edits).
#     The paper-point per-position timing GAUGES are machine-dependent,
#     so they are diffed one-sided at 100%: only a >2x slowdown fails.
#     The speedup gauge is informational (its floor is enforced by the
#     kernel_speedup_gate ctest) and improvements must not fail the gate,
#     so it is excluded here.
#  5. bench_fault_sweep runs a fixed seeded campaign through every fault
#     profile (RUPS_BENCH_SCALE is ignored), so its exchange/delivery
#     COUNTERS are deterministic — diffed at 2%. The per-profile error
#     gauges come from the same seeded simulation and are diffed at 5%
#     (they drift only if the channel, protocol or estimator changed).
#  6. bench_telemetry --report-only replays the warm N=16 fleet campaign
#     (fixed rounds, seeded, serial — deterministic) and emits the
#     snapshot + windowed-series telemetry_metrics section. Counters,
#     gauges (incl. labeled family cells and per-neighbour staleness) and
#     the sim-time series columns are diffed tightly; wall-clock series
#     quantile columns (#p50/#p95/#p99) one-sided and loose, like the
#     other timing passes. log.suppressed (wall-clock rate limiter) and
#     health.latency_p99_us (wall-clock rolling quantile) are excluded.
#  7. bench_profile --report-only replays the same warm campaign driven
#     round by round with the allocation census on: the span-attributed
#     alloc.count{stage}/alloc.bytes{stage} cells and the per-round
#     ratchet gauges are deterministic on the serial driving thread, so
#     gauges are diffed at 10% and counters at 2%. Wall-clock sampler
#     counters (profiler.ticks/profiler.samples) and the usual wall-clock
#     metrics are excluded.
#  8. bench_syn_kernel --quant-report replays the paper-point quantized
#     scan: the accuracy counters (maxerr in micro-units, argmax
#     agreement, scored positions) are exact functions of the seeded
#     inputs — diffed at 2%. Per-position timing gauges are one-sided at
#     100%; the speedup gauges are excluded (their floor is the
#     quantized_speedup_gate ctest).
#  9. bench_service_scaling --report-only replays a small seeded city
#     fleet through the sharded matcher service (fixed rounds, serial
#     drain — deterministic): admission/queue/estimate counters are
#     diffed at 2% and gauges at 5%. Wall-clock-fed values
#     (health.latency_p99_us, latency-rule health.alerts,
#     log.suppressed) are excluded; the scaling/zero-alloc floors are
#     enforced by the service_scaling_gate ctest, not here.
# 10. bench_stream replays the seeded per-metre streaming campaign and
#     its round baseline through every profile (fixed size, serial,
#     RUPS_BENCH_SCALE ignored): stream.* protocol counters and the
#     per-profile bytes/accuracy/staleness gauges are exact functions of
#     the seeded drive — counters diffed at 2%, gauges at 5%. The
#     wall-clock stream.update_us histogram is excluded
#     (--skip-histograms); the efficiency floors themselves are enforced
#     by the stream_efficiency_gate ctest, not here.
#
# Usage:
#   bench_regression.sh <bench_compute_cost> <bench_comm_cost> \
#                       <bench_fleet_scaling> <bench_syn_kernel> \
#                       <bench_fault_sweep> <bench_telemetry> \
#                       <bench_profile> <bench_service_scaling> \
#                       <bench_stream> <obs_diff> <baseline.json> <workdir>
set -eu

if [[ $# -ne 12 ]]; then
  echo "usage: bench_regression.sh <bench_compute_cost> <bench_comm_cost>" \
       "<bench_fleet_scaling> <bench_syn_kernel> <bench_fault_sweep>" \
       "<bench_telemetry> <bench_profile> <bench_service_scaling>" \
       "<bench_stream> <obs_diff> <baseline.json> <workdir>" >&2
  exit 2
fi

compute_bin=$(realpath "$1")
comm_bin=$(realpath "$2")
fleet_bin=$(realpath "$3")
kernel_bin=$(realpath "$4")
fault_bin=$(realpath "$5")
telemetry_bin=$(realpath "$6")
profile_bin=$(realpath "$7")
service_bin=$(realpath "$8")
stream_bin=$(realpath "$9")
obs_diff_bin=$(realpath "${10}")
baseline=$(realpath "${11}")
workdir="${12}"

mkdir -p "$workdir"
workdir=$(realpath "$workdir")

echo "== pass 1/10: comm-cost counters (deterministic, tight) =="
comm_dir="$workdir/comm"
rm -rf "$comm_dir"
mkdir -p "$comm_dir"
(cd "$comm_dir" && "$comm_bin" > bench_comm_cost.log)
"$obs_diff_bin" --section comm_metrics \
  --counter-tol 0.02 --skip-histograms --skip-benchmarks \
  "$baseline" "$comm_dir/bench_out/comm_cost_metrics.json"

echo ""
echo "== pass 2/10: compute-cost timings (noisy, one-sided 100%) =="
compute_dir="$workdir/compute"
rm -rf "$compute_dir"
mkdir -p "$compute_dir"
(cd "$compute_dir" && RUPS_BENCH_SCALE=0.3 "$compute_bin" \
    --benchmark_min_time=0.05 \
    --benchmark_out="$compute_dir/compute_bench.json" \
    --benchmark_out_format=json > bench_compute_cost.log)
"$obs_diff_bin" \
  --skip-counters --skip-gauges --skip-histograms --bench-tol 1.0 \
  "$baseline" "$compute_dir/compute_bench.json"

echo ""
echo "== pass 3/10: fleet cache/batch counters (deterministic, tight) =="
fleet_dir="$workdir/fleet"
rm -rf "$fleet_dir"
mkdir -p "$fleet_dir"
(cd "$fleet_dir" && "$fleet_bin" > bench_fleet_scaling.log)
"$obs_diff_bin" --section fleet_metrics \
  --counter-tol 0.02 --skip-histograms --skip-benchmarks \
  "$baseline" "$fleet_dir/bench_out/fleet_scaling_metrics.json"

echo ""
echo "== pass 4/10: kernel sweep counters (tight) + timings (one-sided) =="
kernel_dir="$workdir/kernel"
rm -rf "$kernel_dir"
mkdir -p "$kernel_dir"
(cd "$kernel_dir" && RUPS_BENCH_SCALE=0.3 "$kernel_bin" \
    --benchmark_min_time=0.05 \
    --benchmark_filter='w:100/k:45' > bench_syn_kernel.log)
"$obs_diff_bin" --section kernel_metrics \
  --counter-tol 0.02 --gauge-tol 1.0 --gauge-one-sided \
  --ignore kernel.paper.speedup --ignore quant.paper \
  --skip-histograms --skip-benchmarks \
  "$baseline" "$kernel_dir/bench_out/syn_kernel_metrics.json"

echo ""
echo "== pass 5/10: fault-sweep delivery counters + error gauges =="
fault_dir="$workdir/fault"
rm -rf "$fault_dir"
mkdir -p "$fault_dir"
(cd "$fault_dir" && "$fault_bin" > bench_fault_sweep.log 2> /dev/null)
"$obs_diff_bin" --section fault_metrics \
  --counter-tol 0.02 --gauge-tol 0.05 \
  --skip-histograms --skip-benchmarks \
  "$baseline" "$fault_dir/bench_out/fault_sweep_metrics.json"

echo ""
echo "== pass 6/10: telemetry families + windowed series (deterministic) =="
telemetry_dir="$workdir/telemetry"
rm -rf "$telemetry_dir"
mkdir -p "$telemetry_dir"
(cd "$telemetry_dir" && "$telemetry_bin" --report-only > bench_telemetry.log)
"$obs_diff_bin" --section telemetry_metrics \
  --counter-tol 0.02 --gauge-tol 0.05 \
  --series-tol 0.05 --series-timing-tol 4.0 \
  --ignore log.suppressed --ignore health.latency_p99_us \
  --skip-histograms --skip-benchmarks \
  "$baseline" "$telemetry_dir/bench_out/telemetry_metrics.json"

echo ""
echo "== pass 7/10: allocation census + ratchet gauges (deterministic) =="
profile_dir="$workdir/profile"
rm -rf "$profile_dir"
mkdir -p "$profile_dir"
(cd "$profile_dir" && "$profile_bin" --report-only > bench_profile.log)
"$obs_diff_bin" --section profile_metrics \
  --counter-tol 0.02 --gauge-tol 0.10 \
  --ignore log.suppressed --ignore health.latency_p99_us \
  --ignore profiler.ticks --ignore profiler.samples \
  --skip-histograms --skip-benchmarks \
  "$baseline" "$profile_dir/bench_out/profile_metrics.json"

echo ""
echo "== pass 8/10: quantized kernel accuracy counters + timings =="
quant_dir="$workdir/quant"
rm -rf "$quant_dir"
mkdir -p "$quant_dir"
(cd "$quant_dir" && RUPS_BENCH_SCALE=0.3 "$kernel_bin" --quant-report \
    > bench_syn_quant.log)
# Accuracy COUNTERS (max |score delta| in micro-units, argmax agreement,
# scored positions) are exact functions of the seeded inputs — diffed
# tightly. Timing gauges are machine-dependent: one-sided at 100%. The
# speedup gauges are informational here (their floor is enforced by the
# quantized_speedup_gate ctest) and improvements must not fail the gate.
"$obs_diff_bin" --section quant_metrics \
  --counter-tol 0.02 --gauge-tol 1.0 --gauge-one-sided \
  --ignore _speedup \
  --skip-histograms --skip-benchmarks \
  "$baseline" "$quant_dir/bench_out/syn_quant_metrics.json"

echo ""
echo "== pass 9/10: sharded service admission/queue counters (tight) =="
service_dir="$workdir/service"
rm -rf "$service_dir"
mkdir -p "$service_dir"
(cd "$service_dir" && "$service_bin" --report-only > bench_service_scaling.log)
"$obs_diff_bin" --section service_metrics \
  --counter-tol 0.02 --gauge-tol 0.05 \
  --ignore log.suppressed --ignore health.latency_p99_us \
  --ignore health.alerts \
  --skip-histograms --skip-benchmarks \
  "$baseline" "$service_dir/bench_out/service_scaling_metrics.json"

echo ""
echo "== pass 10/10: streaming protocol counters + efficiency gauges =="
stream_dir="$workdir/stream"
rm -rf "$stream_dir"
mkdir -p "$stream_dir"
(cd "$stream_dir" && "$stream_bin" > bench_stream.log)
"$obs_diff_bin" --section stream_metrics \
  --counter-tol 0.02 --gauge-tol 0.05 \
  --ignore log.suppressed --ignore health.latency_p99_us \
  --skip-histograms --skip-benchmarks \
  "$baseline" "$stream_dir/bench_out/stream_metrics.json"

echo ""
echo "bench regression gate: PASS"
