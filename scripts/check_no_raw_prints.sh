#!/usr/bin/env bash
# CI guard: library code under src/ must not print to stdout/stderr with raw
# streams — all diagnostics route through the rups::obs logger (RUPS_LOG)
# so they are leveled, rate-limitable and redirectable. The obs/ subsystem
# itself (the sink implementation) is exempt, as are formatting-only calls
# (snprintf into buffers).
#
# bench/ and examples/ are also scanned: those trees hold CLIs and report
# printers whose stdout IS the product, so known surfaces are allowlisted
# by basename below — a new tool must be added here deliberately instead of
# silently bypassing the logger.
#
# Usage: check_no_raw_prints.sh <src-dir> [bench-or-examples-dir ...]
set -u

src_dir="${1:?usage: check_no_raw_prints.sh <src-dir> [extra-dir ...]}"
shift

# Intentional stdout surfaces outside src/.
allowlist=(
  # bench report printers (one per paper artefact) + shared helpers
  bench_fig1_trajectories.cpp bench_fig2_temporal_stability.cpp
  bench_fig3_uniqueness.cpp bench_fig4_resolution.cpp
  bench_fig9_radio_config.cpp bench_fig10_aggregation.cpp
  bench_fig11_environments.cpp bench_fig12_vs_gps.cpp
  bench_comm_cost.cpp bench_compute_cost.cpp bench_syn_kernel.cpp
  bench_ablation_channels.cpp bench_ablation_interpolation.cpp
  bench_ablation_window.cpp bench_ablation_field_scales.cpp
  bench_ablation_gap.cpp bench_ext_multiband.cpp bench_fleet_scaling.cpp
  bench_fault_sweep.cpp bench_telemetry.cpp bench_profile.cpp
  bench_service_scaling.cpp bench_stream.cpp
  bench_common.hpp bench_campaign.hpp
  # example CLIs / demos
  quickstart.cpp convoy_tracking.cpp rush_hour.cpp gsm_survey.cpp
  pedestrian.cpp trace_tool.cpp obs_diff.cpp telemetry_report.cpp
  rups_exporterd.cpp rups_matcherd.cpp
)

allowed() {
  local base
  base=$(basename "$1")
  for name in "${allowlist[@]}"; do
    [[ "$base" == "$name" ]] && return 0
  done
  return 1
}

# std::cout / std::cerr / std::clog, and printf/fprintf/puts calls.
# \b keeps snprintf/vsnprintf (buffer formatting) out of the match.
pattern='std::cout|std::cerr|std::clog|\b(f?printf|puts)[[:space:]]*\('

fail=0

matches=$(grep -rnE "$pattern" \
  --include='*.cpp' --include='*.hpp' "$src_dir" \
  | grep -v '/obs/' || true)
if [[ -n "$matches" ]]; then
  echo "raw stream prints found in src/ (use RUPS_LOG from obs/log.hpp):"
  echo "$matches"
  fail=1
fi

for dir in "$@"; do
  files=$(grep -rlE "$pattern" \
    --include='*.cpp' --include='*.hpp' "$dir" || true)
  for file in $files; do
    if ! allowed "$file"; then
      echo "raw stream prints in non-allowlisted file $file"
      echo "(intentional CLI/report output? add its basename to the"
      echo " allowlist in scripts/check_no_raw_prints.sh)"
      fail=1
    fi
  done
done

if [[ $fail -ne 0 ]]; then
  exit 1
fi

echo "OK: no raw stream prints outside obs/ and allowlisted surfaces"
exit 0
