#!/usr/bin/env bash
# CI guard: library code under src/ must not print to stdout/stderr with raw
# streams — all diagnostics route through the rups::obs logger (RUPS_LOG)
# so they are leveled, rate-limitable and redirectable. The obs/ subsystem
# itself (the sink implementation) is exempt, as are formatting-only calls
# (snprintf into buffers).
#
# Usage: check_no_raw_prints.sh <src-dir>
set -u

src_dir="${1:?usage: check_no_raw_prints.sh <src-dir>}"

# std::cout / std::cerr / std::clog, and printf/fprintf/puts calls.
# \b keeps snprintf/vsnprintf (buffer formatting) out of the match.
pattern='std::cout|std::cerr|std::clog|\b(f?printf|puts)[[:space:]]*\('

matches=$(grep -rnE "$pattern" \
  --include='*.cpp' --include='*.hpp' "$src_dir" \
  | grep -v '/obs/' || true)

if [[ -n "$matches" ]]; then
  echo "raw stream prints found in src/ (use RUPS_LOG from obs/log.hpp):"
  echo "$matches"
  exit 1
fi

echo "OK: src/ is free of raw stream prints outside obs/"
exit 0
