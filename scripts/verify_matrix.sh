#!/usr/bin/env bash
# Build-and-test matrix for the two non-default configurations:
#
#  1. obs-disabled — RUPS_OBS_DISABLED=ON compiles rups::obs to no-ops
#     behind the same headers. Full ctest must pass (recorder/health
#     instrumentation statements evaluate nothing; the bench regression
#     gate is excluded by CMake in this config).
#  2. asan-ubsan  — Address + UB sanitizers over the observability test
#     binaries (sharded atomics, labeled-family churn under the shared
#     lock, windowed series collection, cross-thread span/flow parenting,
#     recorder ring concurrency, JSON parser),
#     the codec fuzz tests (decoder fed random/truncated/bit-flipped
#     buffers must fail by exception, never by out-of-bounds reads),
#     the lag-batched kernel bit-identity tests (overlapped tail blocks
#     and strided lanes are exactly the kind of indexing asan vets),
#     the quantized-kernel differential suite and its pack-builder fuzz
#     (random/NaN/±inf/out-of-range dBm through one-shot builds and
#     eviction-heavy sync cycles must clamp or mask, never UB — the
#     byte-staggered integer lag passes are prime asan territory),
#     the fault-injection suites (FaultyChannel truncation/bit-flip paths
#     and the salvage decoder index arithmetic), the ops-plane surfaces
#     (sampling profiler seqlock reads, Prometheus exporter socket loop,
#     shutdown ordering), plus a small end-to-end campaign smoke.
#     Allocation accounting auto-disables under ASAN (the sanitizer owns
#     malloc; interposing operator new would bypass redzone poisoning) —
#     alloc.cpp logs the reason once and test_alloc GTEST_SKIPs its
#     accounting assertions in this lane. The sharded matcher service
#     suites (arena slot recycling, ticket-table indexing, bounded-ring
#     queue arithmetic) run here too.
#  3. tsan — ThreadSanitizer over the shard-concurrency suite, the
#     thread-pool tests and the pooled streaming-determinism suite:
#     pooled drains slice shards (and streaming updates slice
#     neighbours) across workers every round, so any cross-shard or
#     cross-neighbour sharing that is not actually private (arena
#     slots, ticket table, metric handles, queue internals) surfaces
#     as a data race.
#
# Usage: scripts/verify_matrix.sh [jobs]   (default: 2)
set -eu

jobs="${1:-2}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

echo "== obs-disabled: configure + build + ctest =="
cmake --preset obs-disabled
cmake --build --preset obs-disabled -j"$jobs"
ctest --preset obs-disabled -j"$jobs"

echo ""
echo "== asan-ubsan: configure + build obs/json/campaign surfaces =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$jobs" --target \
  test_obs test_obs_disabled test_obs_recorder test_obs_health \
  test_obs_family test_obs_series test_obs_spans \
  test_obs_pipeline test_json test_codec_fuzz test_packed_batch \
  test_quant_kernel test_quant_fuzz \
  test_wsm_faults test_exchange_degraded \
  test_profiler test_alloc test_expo test_ops_shutdown \
  test_service test_service_concurrency \
  test_service_churn test_stream_recovery test_stream_determinism \
  test_packed_stream \
  trace_tool rups_exporterd

echo ""
echo "== asan-ubsan: run sanitized binaries =="
# test_alloc self-skips here: alloc accounting is compiled out under ASAN
# (with a logged reason), and the test asserts the inert surface instead.
for bin in test_obs test_obs_disabled test_obs_recorder test_obs_health \
           test_obs_family test_obs_series test_obs_spans \
           test_obs_pipeline test_json test_codec_fuzz test_packed_batch \
           test_quant_kernel test_quant_fuzz \
           test_wsm_faults test_exchange_degraded \
           test_profiler test_alloc test_expo test_ops_shutdown \
           test_service test_service_concurrency \
           test_service_churn test_stream_recovery test_stream_determinism \
           test_packed_stream; do
  echo "-- $bin"
  "build-asan/tests/$bin"
done

echo "-- trace_tool campaign smoke"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
build-asan/examples/trace_tool campaign 5 \
  --metrics-out "$smoke_dir/metrics.json" \
  --trace-out "$smoke_dir/trace.json" \
  --series-out "$smoke_dir/series.json" \
  --profile-out "$smoke_dir/profile.folded"
test -s "$smoke_dir/metrics.json"
test -s "$smoke_dir/trace.json"
test -s "$smoke_dir/series.json"
test -e "$smoke_dir/profile.folded"

echo "-- rups_exporterd selfcheck (live scrape under sanitizers)"
build-asan/examples/rups_exporterd --selfcheck

echo ""
echo "== tsan: configure + build shard-concurrency surfaces =="
cmake --preset tsan
cmake --build --preset tsan -j"$jobs" --target \
  test_service_concurrency test_thread_pool test_stream_determinism

echo ""
echo "== tsan: run sanitized binaries =="
for bin in test_thread_pool test_service_concurrency \
           test_stream_determinism; do
  echo "-- $bin"
  "build-tsan/tests/$bin"
done

echo ""
echo "verify matrix: PASS"
